// Package core implements the paper's primary contribution: the analog
// accelerator *architecture* (Sections III-B and IV) by which a digital
// host safely uses a continuous-time analog chip as a linear-algebra
// solver. The host side owns:
//
//   - compilation of a sparse system A·u = b onto chip resources
//     (variable→integrator, coefficient→multiplier gain, bias→DAC,
//     copying→fanout trees, summation→crossbar net joining);
//   - value/time scaling so arbitrary-magnitude coefficients fit the
//     multipliers' gain range (the Section VI-D inset derivation);
//   - calibration orchestration (Table I `init`);
//   - the run loop with overflow-exception handling and automatic
//     rescale-and-retry;
//   - precision refinement by residual iteration (Algorithm 2), which
//     builds arbitrarily many digits from a low-resolution ADC;
//   - domain decomposition for problems bigger than the chip
//     (Section IV-B);
//   - the chip's native ODE mode (Figure 1); and
//   - the continuous-time Newton extension for nonlinear systems that the
//     paper names as future work (Section VI-F).
//
// Everything the host does to the chip goes through the Table I ISA
// (internal/isa): core never touches the simulator behind the transport.
package core

import (
	"errors"
	"fmt"

	"analogacc/internal/chip"
	"analogacc/internal/isa"
	"analogacc/internal/la"
)

// Matrix is the coefficient-matrix abstraction the compiler needs: apply
// (for digital residuals) plus per-row access (for gain programming).
// la.CSR and la.PoissonStencil both satisfy it.
type Matrix interface {
	la.Operator
	la.RowVisitor
}

// Capacity errors.
var (
	// ErrTooLarge: the system needs more variables than the chip has
	// integrators/converters. Use SolveDecomposed.
	ErrTooLarge = errors.New("core: system exceeds chip capacity")
	// ErrNotSettled: the analog run hit its time budget before the ADC
	// readings stabilized.
	ErrNotSettled = errors.New("core: analog computation did not settle within the time budget")
	// ErrRescaleLimit: overflow exceptions persisted through the maximum
	// number of problem rescales.
	ErrRescaleLimit = errors.New("core: overflow exceptions persisted after maximum rescales")
	// ErrUnresolvable: the scaled system's conditioning exceeds the
	// converter resolution — the bias signal is below the residual floor
	// that ADC quantization imposes, so no reading can verify settling
	// (Section VI-D's dynamic-range trade at its breaking point). Use a
	// higher-resolution ADC or decompose into better-conditioned blocks.
	ErrUnresolvable = errors.New("core: system conditioning exceeds ADC resolution at this scale")
	// ErrEngineUnavailable: SolveOptions.Engine (or SelectEngine) was set
	// but the chip behind this driver offers no engine knob — it is not a
	// simulated device on the in-memory loopback.
	ErrEngineUnavailable = errors.New("core: transport exposes no simulation-engine selection")
)

// Accelerator is the host-side driver for one analog accelerator chip.
type Accelerator struct {
	host *isa.Host
	spec chip.Spec
	pm   *chip.PortMap

	analogTime   float64 // Σ armed-and-executed timeout durations
	runs         int     // execStart count
	configs      int     // full matrix programming passes (gains + routing)
	calibrated   bool
	calibrations int // Calibrate successes; caches watch it for trim drift
	// current is the session whose matrix is programmed on the chip;
	// sessions re-acquire ownership transparently (see Session.ensureOwned).
	current *Session
	// biasMulBase is the first multiplier of the bias-gain path in the
	// currently programmed configuration (see setBias).
	biasMulBase int
	// laneSupport caches the lane-batched-mode probe: 0 unknown, 1 the
	// device accepted a setLanes commit, -1 it answered StatusBadOpcode
	// (an older device; batches stay sequential without re-probing).
	laneSupport int8
}

// New binds a driver to a chip behind a transport. The spec must match the
// physical chip (the host compiles against the same resource map).
func New(t isa.Transport, spec chip.Spec) (*Accelerator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Accelerator{
		host: isa.NewHost(t),
		spec: spec,
		pm:   chip.NewPortMap(spec),
	}, nil
}

// NewSimulated fabricates a simulated chip for the spec and binds a driver
// to it over an in-memory SPI loopback. The returned chip is the "bench"
// handle (probing, stimulus injection); all solving goes over the ISA.
func NewSimulated(spec chip.Spec) (*Accelerator, *chip.Chip, error) {
	dev, err := chip.New(spec)
	if err != nil {
		return nil, nil, err
	}
	acc, err := New(isa.NewLoopback(dev), spec)
	if err != nil {
		return nil, nil, err
	}
	return acc, dev, nil
}

// Spec returns the chip design this driver compiles against.
func (acc *Accelerator) Spec() chip.Spec { return acc.spec }

// engineSelector is the side-band capability a simulated device exposes
// for switching its evaluation kernel (chip.Chip implements it).
type engineSelector interface {
	SelectEngine(name string, workers int) error
}

// SelectEngine switches the simulation kernel of the chip behind this
// driver ("auto", "interpreter", "compiled", "fused"; workers <= 0 keeps
// the current bound). Engines are bit-identical, so this never changes a
// solution — only how fast the simulated physics runs. It is a side-band
// knob reachable only over the in-memory loopback; a driver bound to any
// other transport reports ErrEngineUnavailable.
func (acc *Accelerator) SelectEngine(name string, workers int) error {
	t := acc.host.Transport()
	if lb, ok := t.(*isa.Loopback); ok {
		if es, ok := lb.Dev().(engineSelector); ok {
			return es.SelectEngine(name, workers)
		}
	}
	if es, ok := t.(engineSelector); ok {
		return es.SelectEngine(name, workers)
	}
	return ErrEngineUnavailable
}

// Host exposes the raw ISA driver (examples use it for low-level access).
func (acc *Accelerator) Host() *isa.Host { return acc.host }

// AnalogTime returns the accumulated analog computation seconds this driver
// has armed and executed: the performance metric of Figures 8, 9 and 12.
func (acc *Accelerator) AnalogTime() float64 { return acc.analogTime }

// Runs returns how many execStart cycles the driver has issued.
func (acc *Accelerator) Runs() int { return acc.runs }

// Configurations returns how many full linear-system programming passes
// (matrix gains + crossbar routing + commit) the driver has compiled onto
// the chip. Bias-only rewrites between refinement passes and sweeps do not
// count — the gap between block solves and configurations is the payoff of
// session pinning, and the decomposition stats report it as reuse hits.
func (acc *Accelerator) Configurations() int { return acc.configs }

// Calibrate runs the chip's init sequence (Table I) once; repeated calls
// re-calibrate. Returns the number of units trimmed.
func (acc *Accelerator) Calibrate() (int, error) {
	n, err := acc.host.Init()
	if err == nil {
		acc.calibrated = true
		acc.calibrations++
	}
	return n, err
}

// Calibrated reports whether Calibrate has succeeded on this driver.
func (acc *Accelerator) Calibrated() bool { return acc.calibrated }

// CalibrationCount returns how many init sequences have succeeded on this
// driver. Session caches compare it across loans: a change means the trims
// drifted under a resident configuration, whose learned scales are then
// stale and must be invalidated.
func (acc *Accelerator) CalibrationCount() int { return acc.calibrations }

// ResidentFingerprint returns the la.Fingerprint and order of the matrix
// currently programmed on the chip (the live session), or (0, 0) when the
// chip holds no system. The serve pool keys its operator-affinity cache on
// it: a checkout for a matrix with the same fingerprint adopts the
// resident configuration through the BeginSession fast path instead of
// reprogramming gains and routing.
func (acc *Accelerator) ResidentFingerprint() (uint64, int) {
	if acc.current == nil {
		return 0, 0
	}
	return acc.current.fp, acc.current.n
}

// ResidentAdoptable reports whether a fresh BeginSession over the same
// matrix would adopt the resident configuration without reprogramming.
// A dynamic-range boost reprograms the gains at a value scale above the
// session's compile-time base, and a new session always starts at the
// base scale, so a boosted resident configuration is not reusable as-is.
// Session caches should only advertise residents for which this holds —
// otherwise a "hit" still pays the full gain/routing rewrite.
func (acc *Accelerator) ResidentAdoptable() bool {
	cur := acc.current
	return cur != nil && cur.sc.S == cur.baseS
}

// Requirements describes the chip resources a compiled system needs.
type Requirements struct {
	Variables   int
	Multipliers int
	Fanouts     int
}

// requirementsOf walks the matrix structure and totals resource needs.
// Each variable j is consumed by the multipliers of column j plus one ADC
// tap, all fed from a fanout tree (an analog output can drive exactly one
// destination; copying needs current mirrors). Each row additionally uses
// one bias-gain multiplier between its DAC and its integrator: the DAC
// codes then always use full range, with the common bias magnitude carried
// by the gain — without it, a strongly value-scaled system's biases would
// quantize to zero or a single LSB (the Section VI-D dynamic-range trap).
func requirementsOf(a Matrix) Requirements {
	n := a.Dim()
	colUse := make([]int, n)
	muls := n // bias-gain path, one per row
	for i := 0; i < n; i++ {
		a.VisitRow(i, func(j int, _ float64) {
			muls++
			colUse[j]++
		})
	}
	fanouts := 0
	for j := 0; j < n; j++ {
		consumers := colUse[j] + 1 // matrix columns + ADC readout
		fanouts += fanoutTreeSize(consumers, 0)
	}
	return Requirements{Variables: n, Multipliers: muls, Fanouts: fanouts}
}

// fanoutTreeSize returns how many fanout blocks of `ways` branches are
// needed to copy one source to `consumers` destinations. ways == 0 means
// "use the spec default at call time" — callers pass the real value.
func fanoutTreeSize(consumers, ways int) int {
	if ways <= 1 {
		ways = 2
	}
	if consumers <= 1 {
		// Even a single consumer goes through one mirror: the integrator
		// output itself is also a single branch, but we keep the tree
		// uniform so the readout tap never steals the feedback path.
		return 1
	}
	// f fanouts chained give f·(ways-1)+1 leaves.
	return (consumers + ways - 3) / (ways - 1)
}

// Fits reports whether the system can be compiled onto the chip, and the
// shortfall if not.
func (acc *Accelerator) Fits(a Matrix) error { return SpecFits(acc.spec, a) }

// SpecFits reports whether a system can be compiled onto a chip of the
// given design, without fabricating one — the check the serve pool uses to
// pick the smallest size class whose chips can hold a request's matrix.
func SpecFits(spec chip.Spec, a Matrix) error {
	req := requirementsOf(a)
	counts := spec.Counts()
	n := a.Dim()
	colUse := make([]int, n)
	for i := 0; i < n; i++ {
		a.VisitRow(i, func(j int, _ float64) { colUse[j]++ })
	}
	fanouts := 0
	for j := 0; j < n; j++ {
		fanouts += fanoutTreeSize(colUse[j]+1, spec.FanoutWays)
	}
	switch {
	case req.Variables > counts.Integrators:
		return fmt.Errorf("core: %d variables > %d integrators: %w", req.Variables, counts.Integrators, ErrTooLarge)
	case req.Variables > counts.ADCs:
		return fmt.Errorf("core: %d variables > %d ADCs: %w", req.Variables, counts.ADCs, ErrTooLarge)
	case req.Variables > counts.DACs:
		return fmt.Errorf("core: %d variables > %d DACs: %w", req.Variables, counts.DACs, ErrTooLarge)
	case req.Multipliers > counts.Multipliers:
		return fmt.Errorf("core: %d coefficients > %d multipliers: %w", req.Multipliers, counts.Multipliers, ErrTooLarge)
	case fanouts > counts.Fanouts:
		return fmt.Errorf("core: %d fanout blocks needed > %d available: %w", fanouts, counts.Fanouts, ErrTooLarge)
	}
	return nil
}

// MaxVariables returns the largest system order this chip can hold by
// converter/integrator count alone (structure may constrain further).
func (acc *Accelerator) MaxVariables() int {
	c := acc.spec.Counts()
	n := c.Integrators
	if c.ADCs < n {
		n = c.ADCs
	}
	if c.DACs < n {
		n = c.DACs
	}
	return n
}

// program compiles the scaled system (as, bs, initial conditions) into
// configuration instructions and commits it. Multiplier m carries gain
// -as[i][j] from variable j into integrator i's summing net; DAC i carries
// bs[i]; a fanout tree copies each variable to its consumers and its ADC.
func (acc *Accelerator) program(as Matrix, bs la.Vector, ics la.Vector) error {
	n := as.Dim()
	if err := acc.Fits(as); err != nil {
		return err
	}
	h, pm := acc.host, acc.pm
	if err := h.CfgReset(); err != nil {
		return fmt.Errorf("core: config reset: %w", err)
	}
	nextMul := 0
	nextFanout := 0

	// Column consumer lists: for each variable j, the multiplier input
	// ports that need u_j (assigned while walking rows) plus ADC j.
	consumers := make([][]uint16, n)
	var programErr error
	for i := 0; i < n && programErr == nil; i++ {
		row := i
		as.VisitRow(row, func(j int, aij float64) {
			if programErr != nil {
				return
			}
			m := nextMul
			nextMul++
			if err := h.SetMulGain(uint16(m), -aij); err != nil {
				programErr = fmt.Errorf("core: gain for a[%d][%d]: %w", row, j, err)
				return
			}
			if err := h.SetConn(pm.MultiplierOut(m), pm.IntegratorIn(row)); err != nil {
				programErr = fmt.Errorf("core: multiplier %d output: %w", m, err)
				return
			}
			consumers[j] = append(consumers[j], pm.MultiplierIn(m, 0))
		})
	}
	if programErr != nil {
		return programErr
	}
	// Bias-gain path: DAC_i -> multiplier(γ) -> integrator_i, so the DAC
	// always runs at full range and γ carries the bias magnitude.
	acc.biasMulBase = nextMul
	for i := 0; i < n; i++ {
		m := nextMul
		nextMul++
		if err := h.SetConn(pm.DACOut(i), pm.MultiplierIn(m, 0)); err != nil {
			return fmt.Errorf("core: DAC %d to bias multiplier: %w", i, err)
		}
		if err := h.SetConn(pm.MultiplierOut(m), pm.IntegratorIn(i)); err != nil {
			return fmt.Errorf("core: bias multiplier %d output: %w", m, err)
		}
	}
	if err := acc.setBias(bs); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		ic := 0.0
		if ics != nil {
			ic = ics[i]
		}
		if err := h.SetIntInitial(uint16(i), ic); err != nil {
			return fmt.Errorf("core: initial condition u[%d]: %w", i, err)
		}
	}
	// Fanout trees: copy each variable to its consumers + its ADC.
	for j := 0; j < n; j++ {
		dsts := append(consumers[j], acc.pm.ADCIn(j))
		if err := acc.wireTree(pm.IntegratorOut(j), dsts, &nextFanout); err != nil {
			return fmt.Errorf("core: fanout tree for u[%d]: %w", j, err)
		}
	}
	if err := h.CfgCommit(); err != nil {
		return fmt.Errorf("core: commit: %w", err)
	}
	acc.configs++
	return nil
}

// wireTree routes src to every destination through chained fanout blocks.
func (acc *Accelerator) wireTree(src uint16, dsts []uint16, nextFanout *int) error {
	h, pm := acc.host, acc.pm
	ways := acc.spec.FanoutWays
	for {
		f := *nextFanout
		*nextFanout++
		if err := h.SetConn(src, pm.FanoutIn(f)); err != nil {
			return err
		}
		if len(dsts) <= ways {
			for w, d := range dsts {
				if err := h.SetConn(pm.FanoutOut(f, w), d); err != nil {
					return err
				}
			}
			return nil
		}
		// Fill ways-1 branches with destinations; chain the last branch
		// into the next fanout.
		for w := 0; w < ways-1; w++ {
			if err := h.SetConn(pm.FanoutOut(f, w), dsts[w]); err != nil {
				return err
			}
		}
		dsts = dsts[ways-1:]
		src = pm.FanoutOut(f, ways-1)
	}
}

// setBias programs the bias DACs and their gain path for a scaled
// right-hand side (staged; the caller commits). The shared gain
// γ = ‖bs‖∞ / margin puts the largest bias at the DAC's usable full scale,
// so the DAC's relative resolution applies to the biases no matter how
// small value scaling has made them.
func (acc *Accelerator) setBias(bs la.Vector) error {
	gamma := biasGamma(bs, acc.spec.MaxGain)
	for i := range bs {
		beta := 0.0
		if gamma != 0 {
			beta = bs[i] / gamma
		}
		if err := acc.host.SetDacConstant(uint16(i), beta); err != nil {
			return fmt.Errorf("core: bias b[%d]: %w", i, err)
		}
		if err := acc.host.SetMulGain(uint16(acc.biasMulBase+i), gamma); err != nil {
			return fmt.Errorf("core: bias gain %d: %w", i, err)
		}
	}
	return nil
}

// biasGamma is the shared bias-path gain for a scaled right-hand side,
// capped at the multiplier's gain range (DAC codes then absorb the rest,
// which is only legal while ‖bs‖∞ ≤ maxGain — the σ policy guarantees it).
func biasGamma(bs la.Vector, maxGain float64) float64 {
	g := bs.NormInf() / margin
	if g > maxGain {
		g = maxGain
	}
	return g
}

// reprogramBias rewrites only the bias path (DAC codes + bias gains) and
// integrator initial conditions, then recommits — the cheap path for
// Algorithm 2 refinement passes and decomposition sweeps where the matrix
// (gains and routing) is unchanged.
func (acc *Accelerator) reprogramBias(bs la.Vector, ics la.Vector) error {
	if err := acc.setBias(bs); err != nil {
		return err
	}
	for i := range bs {
		ic := 0.0
		if ics != nil {
			ic = ics[i]
		}
		if err := acc.host.SetIntInitial(uint16(i), ic); err != nil {
			return fmt.Errorf("core: initial condition u[%d]: %w", i, err)
		}
	}
	if err := acc.host.CfgCommit(); err != nil {
		return fmt.Errorf("core: commit: %w", err)
	}
	return nil
}

// runFor arms the timer for the given analog duration and starts the chip.
func (acc *Accelerator) runFor(seconds float64) error {
	cycles := uint32(seconds * acc.spec.TimerHz)
	if cycles == 0 {
		cycles = 1
	}
	if err := acc.host.SetTimeout(cycles); err != nil {
		return err
	}
	if err := acc.host.ExecStart(); err != nil {
		return err
	}
	acc.analogTime += acc.armedDuration(seconds)
	acc.runs++
	return nil
}

// readCodes returns the raw ADC codes for the first n converters.
func (acc *Accelerator) readCodes(n int) ([]int, error) {
	codes := make([]int, n)
	if err := acc.readCodesInto(codes); err != nil {
		return nil, err
	}
	return codes, nil
}

// readCodesInto fills codes with the raw ADC readings of the first
// len(codes) converters; the settle poll loop reuses one buffer across
// its doubling chunks instead of allocating per poll.
func (acc *Accelerator) readCodesInto(codes []int) error {
	raw, err := acc.host.ReadSerial()
	if err != nil {
		return err
	}
	if len(raw) < 2*len(codes) {
		return fmt.Errorf("core: readSerial returned %d bytes, need %d", len(raw), 2*len(codes))
	}
	for i := range codes {
		codes[i] = int(isa.GetU16(raw, 2*i))
	}
	return nil
}

// readSolution averages each variable's ADC and returns values in
// full-scale units.
func (acc *Accelerator) readSolution(n, samples int) (la.Vector, error) {
	u := la.NewVector(n)
	if err := acc.readSolutionInto(u, samples); err != nil {
		return nil, err
	}
	return u, nil
}

// readSolutionInto is readSolution against a caller-owned buffer.
func (acc *Accelerator) readSolutionInto(u la.Vector, samples int) error {
	for i := range u {
		v, err := acc.host.AnalogAvg(uint16(i), uint16(samples))
		if err != nil {
			return err
		}
		u[i] = v
	}
	return nil
}

// anyException reads the exception vector and reports whether any unit
// latched an overflow.
func (acc *Accelerator) anyException() (bool, error) {
	raw, err := acc.host.ReadExp()
	if err != nil {
		return false, err
	}
	for _, b := range raw {
		if b != 0 {
			return true, nil
		}
	}
	return false, nil
}
