//go:build fpdebug

package core

import "fmt"

// fpVerify (fpdebug build) re-checks a fingerprint match entry-for-entry.
// The fingerprint fast paths only call it when two fingerprints already
// compare equal, so a deep mismatch here is a hash collision (~2⁻⁶⁴) or a
// fingerprint bug — either way adopting the configuration would silently
// solve the wrong system, so it panics rather than returning false.
func fpVerify(a, b Matrix) bool {
	if !matrixDeepEqual(a, b) {
		panic(fmt.Sprintf("core: fingerprint collision between distinct %dx%d matrices", a.Dim(), b.Dim()))
	}
	return true
}

// matrixDeepEqual compares two matrices entry-for-entry via their row
// streams — the pre-fingerprint identity check, kept under this build tag
// as the collision audit.
func matrixDeepEqual(a, b Matrix) bool {
	if a == b {
		return true
	}
	if a.Dim() != b.Dim() {
		return false
	}
	for i := 0; i < a.Dim(); i++ {
		type entry struct {
			j int
			v float64
		}
		var ra, rb []entry
		a.VisitRow(i, func(j int, v float64) { ra = append(ra, entry{j, v}) })
		b.VisitRow(i, func(j int, v float64) { rb = append(rb, entry{j, v}) })
		if len(ra) != len(rb) {
			return false
		}
		for k := range ra {
			if ra[k] != rb[k] {
				return false
			}
		}
	}
	return true
}
