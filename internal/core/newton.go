package core

import (
	"fmt"

	"analogacc/internal/la"
)

// Nonlinear systems (the paper's Section VI-F future work): "the solution
// of nonlinear PDEs proceeds ... using implicit solvers that require
// solving systems of algebraic equations at each time step ... requiring
// Newton-Raphson method-based iterative solvers." Here the digital host
// runs Newton's method and offloads each linearized system J(u)·δ = −F(u)
// to the analog accelerator, with Algorithm 2 refinement providing the
// precision the outer iteration needs.

// NonlinearProblem describes F(u) = 0 with an explicit sparse Jacobian.
type NonlinearProblem interface {
	// Dim returns the number of unknowns.
	Dim() int
	// Eval computes dst = F(u).
	Eval(dst la.Vector, u la.Vector)
	// Jacobian returns J(u) = ∂F/∂u. For the accelerator to solve the
	// Newton step by continuous-time gradient descent, J should be
	// positive definite in the region of interest (true for the
	// discretized elliptic operators the paper targets).
	Jacobian(u la.Vector) *la.CSR
}

// NewtonOptions configures SolveNonlinear.
type NewtonOptions struct {
	// Tolerance is the stop test ‖F(u)‖∞ ≤ Tolerance (default 1e-8).
	Tolerance float64
	// MaxIterations bounds the outer Newton loop (default 50).
	MaxIterations int
	// Damping scales each Newton step (default 1: full steps).
	Damping float64
	// Inner tunes the per-step analog solves.
	Inner SolveOptions
}

func (o NewtonOptions) withDefaults() NewtonOptions {
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-8
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 50
	}
	if o.Damping <= 0 {
		o.Damping = 1
	}
	return o
}

// NewtonStats reports the outer iteration.
type NewtonStats struct {
	Iterations  int
	AnalogTime  float64
	Runs        int
	Refinements int
	// FinalNorm is the final ‖F(u)‖∞.
	FinalNorm float64
}

// SolveNonlinear runs Newton's method from u0 with analog-accelerated
// linear solves. Each iteration compiles the fresh Jacobian onto the chip
// (a new session) and solves J·δ = −F to the inner tolerance.
func (acc *Accelerator) SolveNonlinear(p NonlinearProblem, u0 la.Vector, opt NewtonOptions) (res la.Vector, stats NewtonStats, err error) {
	opt = opt.withDefaults()
	n := p.Dim()
	if len(u0) != n {
		return nil, stats, fmt.Errorf("core: u0 length %d != %d", len(u0), n)
	}
	u := u0.Clone()
	f := la.NewVector(n)
	timeBase := acc.AnalogTime()
	runsBase := acc.Runs()
	defer func() {
		stats.AnalogTime = acc.AnalogTime() - timeBase
		stats.Runs = acc.Runs() - runsBase
	}()
	for iter := 1; iter <= opt.MaxIterations; iter++ {
		p.Eval(f, u)
		stats.FinalNorm = f.NormInf()
		if stats.FinalNorm <= opt.Tolerance {
			stats.Iterations = iter - 1
			return u, stats, nil
		}
		j := p.Jacobian(u)
		rhs := f.Scaled(-1)
		sess, err := acc.BeginSession(j)
		if err != nil {
			return u, stats, fmt.Errorf("core: Newton iteration %d: %w", iter, err)
		}
		delta, st, err := sess.SolveForRefined(rhs, opt.Inner)
		stats.Refinements += st.Refinements
		if err != nil {
			return u, stats, fmt.Errorf("core: Newton iteration %d: %w", iter, err)
		}
		u.AddScaled(opt.Damping, delta)
		stats.Iterations = iter
		if !u.IsFinite() {
			return u, stats, fmt.Errorf("core: Newton diverged at iteration %d", iter)
		}
	}
	p.Eval(f, u)
	stats.FinalNorm = f.NormInf()
	if stats.FinalNorm <= opt.Tolerance {
		return u, stats, nil
	}
	return u, stats, fmt.Errorf("core: ‖F‖=%v after %d Newton iterations (target %v): %w",
		stats.FinalNorm, opt.MaxIterations, opt.Tolerance, ErrNotSettled)
}
