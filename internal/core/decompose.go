package core

import (
	"fmt"

	"analogacc/internal/la"
)

// Domain decomposition (Section IV-B): a system too large for the chip is
// split into contiguous index blocks; each block's principal submatrix is
// solved on the accelerator, with the couplings to other blocks moved to
// the right-hand side (b_s − A_off·x). An outer block iteration sweeps the
// blocks until the global residual converges. As the paper notes, the
// outer iteration converges more slowly than element-wise methods, so
// blocks should be as large as the chip allows ("it is still desirable to
// ensure the block matrices are large").

// DecomposeOptions configures SolveDecomposed.
type DecomposeOptions struct {
	// BlockSize caps variables per block (default: the chip's capacity
	// for this matrix structure).
	BlockSize int
	// GaussSeidel uses the freshest block values within a sweep (block
	// Gauss-Seidel, default) instead of the previous sweep's (block
	// Jacobi). Jacobi is what runs when blocks solve in parallel on
	// multiple accelerators.
	Jacobi bool
	// OuterTolerance is the global stop: ‖b − A·x‖∞ ≤ OuterTolerance·‖b‖∞
	// (default 1e-6).
	OuterTolerance float64
	// MaxSweeps bounds outer iterations (default 400).
	MaxSweeps int
	// Inner tunes the per-block analog solves (refinement happens per
	// block with Inner.Tolerance).
	Inner SolveOptions
}

func (o DecomposeOptions) withDefaults() DecomposeOptions {
	if o.OuterTolerance <= 0 {
		o.OuterTolerance = 1e-6
	}
	if o.MaxSweeps <= 0 {
		o.MaxSweeps = 400
	}
	return o
}

// DecomposeStats reports the outer iteration.
type DecomposeStats struct {
	Blocks int
	Sweeps int
	// Chips is how many accelerators the solve fanned out over (always 1
	// for the sequential path).
	Chips int
	// AnalogTime is the summed virtual analog seconds across all chips;
	// AnalogCritical is the per-chip maximum — the analog time on the
	// critical path when block solves run concurrently. On one chip the
	// two are equal.
	AnalogTime     float64
	AnalogCritical float64
	Runs           int
	// InnerRefinements totals Algorithm 2 passes across all block solves.
	InnerRefinements int
	// Configs counts full matrix programming passes (gains + routing)
	// performed during the solve; ReuseHits counts block solves served by
	// a chip that already held the block's matrix. Session pinning makes
	// Configs grow with the number of distinct blocks, not blocks×sweeps.
	Configs   int
	ReuseHits int
	Residual  float64
}

// blockRHS forms one block's right-hand side rhs = b_s − A_off·x in the
// caller's scratch storage, allocating nothing: dst and off must each hold
// at least len(idx) elements. idx must be a contiguous ascending range,
// which is exactly what blockRanges produces.
func blockRHS(dst, off la.Vector, a *la.CSR, idx []int, b, x la.Vector) la.Vector {
	k := len(idx)
	rhs, neg := dst[:k], off[:k]
	neg.Zero()
	a.OffRangeApply(neg, idx[0], idx[0]+k, x)
	for p, g := range idx {
		rhs[p] = b[g] - neg[p]
	}
	return rhs
}

// blockRange computes contiguous blocks of at most size over n indices.
func blockRanges(n, size int) [][]int {
	var blocks [][]int
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		idx := make([]int, hi-lo)
		for i := range idx {
			idx[i] = lo + i
		}
		blocks = append(blocks, idx)
	}
	return blocks
}

// maxBlockSize finds the largest contiguous block size of A that fits the
// chip, by shrinking from the converter capacity until Fits accepts every
// block.
func (acc *Accelerator) maxBlockSize(a *la.CSR) int {
	size := acc.MaxVariables()
	if size > a.Dim() {
		size = a.Dim()
	}
	for size > 1 {
		ok := true
		for _, idx := range blockRanges(a.Dim(), size) {
			if err := acc.Fits(a.Submatrix(idx)); err != nil {
				ok = false
				break
			}
		}
		if ok {
			return size
		}
		size = size * 3 / 4
	}
	return 1
}

// SolveDecomposed solves A·x = b for systems larger than the chip by block
// decomposition with an outer block iteration. A must be square with a
// nonsingular principal block structure (SPD diagonally-dominant systems
// such as discretized elliptic PDEs converge).
func (acc *Accelerator) SolveDecomposed(a *la.CSR, b la.Vector, opt DecomposeOptions) (u la.Vector, stats DecomposeStats, err error) {
	opt = opt.withDefaults()
	n := a.Dim()
	if len(b) != n {
		return nil, stats, fmt.Errorf("core: b length %d != %d", len(b), n)
	}
	size := opt.BlockSize
	if size <= 0 {
		size = acc.maxBlockSize(a)
	}
	blocks := blockRanges(n, size)
	stats.Blocks = len(blocks)
	stats.Chips = 1
	timeBase := acc.AnalogTime()
	runsBase := acc.Runs()
	cfgBase := acc.Configurations()
	defer func() {
		stats.AnalogTime = acc.AnalogTime() - timeBase
		stats.AnalogCritical = stats.AnalogTime
		stats.Runs = acc.Runs() - runsBase
		stats.Configs = acc.Configurations() - cfgBase
		if hits := stats.Sweeps*stats.Blocks - stats.Configs; hits > 0 {
			stats.ReuseHits = hits
		}
	}()

	// One session per distinct block matrix. For regular grids most
	// blocks share a matrix; sessions are keyed by block and rebuilt
	// only when the chip must be reprogrammed with different gains.
	type blockState struct {
		idx  []int
		sub  *la.CSR
		sess *Session
	}
	states := make([]*blockState, len(blocks))
	for bi, idx := range blocks {
		sub := a.Submatrix(idx)
		states[bi] = &blockState{idx: idx, sub: sub}
	}

	x := la.NewVector(n)
	xNext := la.NewVector(n)
	bn := b.NormInf()
	if bn == 0 {
		return x, stats, nil
	}
	// Scratch for the per-block right-hand sides, sized once for the
	// largest block and resliced inside the sweeps: the outer loop runs
	// blocks×sweeps times and must not allocate per iteration.
	maxLen := 0
	for _, idx := range blocks {
		if len(idx) > maxLen {
			maxLen = len(idx)
		}
	}
	rhsBuf := la.NewVector(maxLen)
	offBuf := la.NewVector(maxLen)
	guessBuf := la.NewVector(maxLen)
	inner := opt.Inner
	for sweep := 1; sweep <= opt.MaxSweeps; sweep++ {
		src := x
		dst := x
		if opt.Jacobi {
			xNext.CopyFrom(x)
			dst = xNext
		}
		for _, st := range states {
			// rhs_s = b_s − (off-block couplings)·x.
			rhs := blockRHS(rhsBuf, offBuf, a, st.idx, b, src)
			// Seed the block solve with the previous iterate: late sweeps
			// change each block little, so refinement starts from (or
			// digitally confirms) a near-solution instead of solving from
			// scratch.
			inner.Guess = guessBuf[:len(st.idx)]
			for p, g := range st.idx {
				inner.Guess[p] = src[g]
			}
			if st.sess == nil {
				// Sessions share the one chip; SolveFor reprograms the
				// gains automatically when ownership changes, and skips
				// the reprogram when the block matrices are identical
				// (all interior strips of a regular grid).
				sess, err := acc.BeginSession(st.sub)
				if err != nil {
					return nil, stats, fmt.Errorf("core: block at %d: %w", st.idx[0], err)
				}
				st.sess = sess
			}
			u, innerStats, err := st.sess.SolveForRefined(rhs, inner)
			stats.InnerRefinements += innerStats.Refinements
			if err != nil {
				return nil, stats, fmt.Errorf("core: sweep %d block at %d: %w", sweep, st.idx[0], err)
			}
			for p, g := range st.idx {
				dst[g] = u[p]
			}
		}
		if opt.Jacobi {
			x.CopyFrom(xNext)
		}
		stats.Sweeps = sweep
		stats.Residual = la.RelativeResidual(a, x, b)
		if stats.Residual <= opt.OuterTolerance {
			return x, stats, nil
		}
	}
	return x, stats, fmt.Errorf("core: residual %v after %d sweeps (target %v): %w",
		stats.Residual, opt.MaxSweeps, opt.OuterTolerance, ErrNotSettled)
}
