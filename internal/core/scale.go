package core

import (
	"math"

	"analogacc/internal/la"
)

// Value and time scaling (the Section VI-D inset). Any system A·u = b with
// arbitrarily large coefficients is mapped into the chip's dynamic range by
// two scale factors:
//
//	A_s = A / S          multiplier gains fit within ±MaxGain·margin
//	b̂  = b / (S·σ)      DAC constants fit within ±margin, and the chip
//	                     settles to û = u / σ, which must fit within ±1.
//
// The settled solution is recovered exactly as u = σ·û. The price is time:
// the slowest eigenvalue of A_s is λ_min(A)/S, so settling takes S× longer
// — "we have restricted the dynamic range in A by extending the time it
// takes for the ODE to simulate".
//
// S is known a priori from max|a_ij|. σ cannot be (it depends on the
// solution magnitude), so it is managed at runtime by the exception loop in
// solve.go: overflow exceptions double σ; unused dynamic range shrinks it.

// margin keeps programmed values comfortably inside the linear range.
const margin = 0.95

// Scaling records the factors chosen for one compiled system.
type Scaling struct {
	// S divides the matrix: A_s = A/S. Settling time dilates by S.
	S float64
	// Sigma scales the solution: u = Sigma · û.
	Sigma float64
}

// matrixScale computes S for a matrix against a gain limit.
func matrixScale(a Matrix, maxGain float64) float64 {
	var maxAbs float64
	for i := 0; i < a.Dim(); i++ {
		a.VisitRow(i, func(_ int, v float64) {
			if x := math.Abs(v); x > maxAbs {
				maxAbs = x
			}
		})
	}
	if maxAbs == 0 {
		return 1
	}
	s := maxAbs / (maxGain * margin)
	if s < 1e-300 {
		s = 1
	}
	return s
}

// initialSigma picks the starting solution scale for a right-hand side: the
// largest bias exactly fills the DAC's usable range, so the run starts with
// full dynamic-range use (Algorithm 2's "scaling the problem up as
// necessary").
func initialSigma(b la.Vector, s float64) float64 {
	bn := b.NormInf()
	if bn == 0 {
		return 1
	}
	return bn / (s * margin)
}

// scaledView presents A/S as a Matrix without copying storage.
type scaledView struct {
	m   Matrix
	inv float64 // 1/S
}

func newScaledView(m Matrix, s float64) scaledView { return scaledView{m: m, inv: 1 / s} }

// Dim returns the underlying order.
func (v scaledView) Dim() int { return v.m.Dim() }

// Apply computes dst = (A/S)·x.
func (v scaledView) Apply(dst, x la.Vector) {
	v.m.Apply(dst, x)
	for i := range dst {
		dst[i] *= v.inv
	}
}

// VisitRow enumerates row entries of A/S.
func (v scaledView) VisitRow(i int, fn func(j int, a float64)) {
	v.m.VisitRow(i, func(j int, a float64) { fn(j, a*v.inv) })
}
