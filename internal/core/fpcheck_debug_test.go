//go:build fpdebug

package core

import (
	"testing"

	"analogacc/internal/la"
)

func TestMatrixDeepEqual(t *testing.T) {
	a1, _ := eq2System()
	a2, _ := eq2System()
	if !matrixDeepEqual(a1, a1) || !matrixDeepEqual(a1, a2) {
		t.Fatal("equal matrices not detected")
	}
	if matrixDeepEqual(a1, a2.Scaled(2)) {
		t.Fatal("different values reported equal")
	}
	if matrixDeepEqual(a1, la.Tridiag(3, -1, 2, -1)) {
		t.Fatal("different dims reported equal")
	}
	d := la.MustCSR(2, []la.COOEntry{{Row: 0, Col: 0, Val: 0.8}, {Row: 1, Col: 1, Val: 0.6}})
	if matrixDeepEqual(a1, d) {
		t.Fatal("different sparsity reported equal")
	}
}

func TestFpVerifyPanicsOnCollision(t *testing.T) {
	// fpVerify is only reached when two fingerprints already match; handed
	// matrices that are actually different it must panic (a collision or a
	// fingerprint bug) rather than let a session adopt the wrong system.
	a1, _ := eq2System()
	a3 := a1.Scaled(2)
	defer func() {
		if recover() == nil {
			t.Fatal("fpVerify accepted distinct matrices")
		}
	}()
	fpVerify(a1, a3)
}

func TestFpVerifyAcceptsEqual(t *testing.T) {
	a1, _ := eq2System()
	a2, _ := eq2System()
	if !fpVerify(a1, a2) {
		t.Fatal("fpVerify rejected equal matrices")
	}
}
