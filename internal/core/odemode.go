package core

import (
	"fmt"

	"analogacc/internal/la"
)

// ODE mode: the chip's native use (Figure 1 and Section II). A linear ODE
// system du/dt = M·u + g with initial condition u(0) = u0 maps onto the
// same datapath as the linear solver with A = −M, so the integrators trace
// the actual trajectory rather than just its steady state. Problem time
// relates to analog time through the bandwidth and the value scale:
// one problem-second runs in S/(2π·BW) analog seconds.

// ODEOptions configures an ODE-mode run.
type ODEOptions struct {
	// Duration is the problem-time horizon to simulate.
	Duration float64
	// SamplePoints is how many trajectory samples to read via the ADCs
	// (default 64). The paper notes sampling frequency trades against
	// resolution; here each sample is a full-resolution read of a paused
	// chip, so dense sampling costs host time, not accuracy.
	SamplePoints int
	// Sigma is the solution scale (u = Sigma·û). Zero derives it from
	// the initial condition and bias magnitudes; trajectories that then
	// overflow return an error telling the caller to enlarge it.
	Sigma float64
	// Samples is the analogAvg depth per read (default 4).
	Samples int
}

// Trajectory is a sampled ODE-mode waveform.
type Trajectory struct {
	// Times are problem-time stamps (not analog seconds).
	Times []float64
	// States holds one solution snapshot per time stamp.
	States []la.Vector
	// AnalogTime is the analog seconds the run consumed.
	AnalogTime float64
	// Scaling records the value/solution scales used.
	Scaling Scaling
}

// SolveODE runs du/dt = M·u + g from u0 for opt.Duration of problem time,
// sampling the trajectory through the ADCs. The returned trajectory
// includes the initial state at t = 0.
func (acc *Accelerator) SolveODE(m Matrix, g, u0 la.Vector, opt ODEOptions) (*Trajectory, error) {
	n := m.Dim()
	if len(g) != n || len(u0) != n {
		return nil, fmt.Errorf("core: ODE dims m=%d g=%d u0=%d", n, len(g), len(u0))
	}
	if opt.Duration <= 0 {
		return nil, fmt.Errorf("core: ODE duration %v must be positive", opt.Duration)
	}
	if opt.SamplePoints <= 0 {
		opt.SamplePoints = 64
	}
	if opt.Samples <= 0 {
		opt.Samples = 4
	}
	s := matrixScale(m, acc.spec.MaxGain)
	sigma := opt.Sigma
	if sigma <= 0 {
		sigma = u0.NormInf() / 0.5
		if sg := g.NormInf() / (s * margin); sg > sigma {
			sigma = sg
		}
		if sigma == 0 {
			sigma = 1
		}
	}
	// A = −M: reuse the solver datapath du/dt ∝ (b − A·u).
	as := newScaledView(m, -s)
	bs := g.Scaled(1 / (s * sigma))
	ics := u0.Scaled(1 / sigma)
	if ics.NormInf() > 1 {
		return nil, fmt.Errorf("core: initial condition exceeds dynamic range at sigma=%v; set ODEOptions.Sigma larger", sigma)
	}
	if bs.NormInf() > 1 {
		return nil, fmt.Errorf("core: bias exceeds DAC range at sigma=%v; set ODEOptions.Sigma larger", sigma)
	}
	if err := acc.program(as, bs, ics); err != nil {
		return nil, err
	}
	acc.current = nil // the solver sessions no longer own the chip

	k := 2 * 3.141592653589793 * acc.spec.Bandwidth
	analogPerProblem := s / k
	dtProblem := opt.Duration / float64(opt.SamplePoints)
	dtAnalog := dtProblem * analogPerProblem

	traj := &Trajectory{Scaling: Scaling{S: s, Sigma: sigma}}
	timeBase := acc.AnalogTime()
	record := func(t float64) error {
		u, err := acc.readSolution(n, opt.Samples)
		if err != nil {
			return err
		}
		traj.Times = append(traj.Times, t)
		traj.States = append(traj.States, u.Scaled(sigma))
		return nil
	}
	if err := record(0); err != nil {
		return nil, err
	}
	for i := 1; i <= opt.SamplePoints; i++ {
		if err := acc.runFor(dtAnalog); err != nil {
			return nil, err
		}
		exc, err := acc.anyException()
		if err != nil {
			return nil, err
		}
		if exc {
			traj.AnalogTime = acc.AnalogTime() - timeBase
			return traj, fmt.Errorf("core: trajectory overflowed dynamic range at t=%v; re-run with ODEOptions.Sigma > %v", float64(i)*dtProblem, sigma)
		}
		if err := record(float64(i) * dtProblem); err != nil {
			return nil, err
		}
	}
	traj.AnalogTime = acc.AnalogTime() - timeBase
	return traj, nil
}
