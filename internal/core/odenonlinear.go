package core

import (
	"fmt"

	"analogacc/internal/la"
)

// Nonlinear ODE mode. The prototype's nonlinear function lookup tables
// ("sine, signum, and sigmoid with the SRAM lookup table") let the chip
// integrate systems like the pendulum u¨ = −sin(u) natively — the
// continuous-time hybrid computation it was actually built for. This file
// compiles systems of the form
//
//	du/dt = M·u + g + Σ_k c_k · φ_k(u_{s_k})
//
// where each φ_k runs through one LUT reading variable s_k and fans out,
// weighted by the column vector c_k, into the integrator summing nodes.
//
// Scaling is the classical analog-computer "function scaling": with value
// scale S and solution scale σ, the chip variable is û = u/σ, and the LUT
// must be programmed with the scaled function
//
//	φ̂_k(x) = φ_k(σ·x) / (S·σ)
//
// so that the scaled dynamics dû/dt_a = k·(M/S·û + ĝ + ĉ·φ̂(û)) integrate
// the original system with time dilated by S/k, exactly as in linear mode.

// LUTTerm is one nonlinear feedback term: Coef_i · Fn(u[Input]) added to
// every du_i/dt with Coef_i ≠ 0.
type LUTTerm struct {
	// Input is the variable index the function reads.
	Input int
	// Fn is the nonlinear function, in problem units.
	Fn func(float64) float64
	// Coef scatters the function output into the rows (problem units).
	Coef la.Vector
}

// NonlinearODEOptions extends ODEOptions for LUT terms.
type NonlinearODEOptions struct {
	ODEOptions
	// FnRange bounds |φ_k(u)| over the trajectory (problem units), used
	// to scale the LUT output path. Zero derives a bound by sampling
	// each Fn over the σ dynamic range.
	FnRange float64
}

// SolveODENonlinear integrates du/dt = M·u + g + Σ c_k·φ_k(u_{s_k}) on the
// chip, with each nonlinearity realized by a lookup table. The number of
// terms is limited by the chip's LUT inventory; every term also consumes a
// fanout tap on its input variable and one multiplier per nonzero of its
// coefficient column.
func (acc *Accelerator) SolveODENonlinear(m Matrix, terms []LUTTerm, g, u0 la.Vector, opt NonlinearODEOptions) (*Trajectory, error) {
	n := m.Dim()
	if len(g) != n || len(u0) != n {
		return nil, fmt.Errorf("core: ODE dims m=%d g=%d u0=%d", n, len(g), len(u0))
	}
	if opt.Duration <= 0 {
		return nil, fmt.Errorf("core: ODE duration %v must be positive", opt.Duration)
	}
	if opt.SamplePoints <= 0 {
		opt.SamplePoints = 64
	}
	if opt.Samples <= 0 {
		opt.Samples = 4
	}
	counts := acc.spec.Counts()
	if len(terms) > counts.LUTs {
		return nil, fmt.Errorf("core: %d nonlinear terms > %d lookup tables: %w", len(terms), counts.LUTs, ErrTooLarge)
	}
	for k, term := range terms {
		if term.Input < 0 || term.Input >= n {
			return nil, fmt.Errorf("core: term %d reads variable %d of %d", k, term.Input, n)
		}
		if len(term.Coef) != n {
			return nil, fmt.Errorf("core: term %d coefficient length %d != %d", k, len(term.Coef), n)
		}
		if term.Fn == nil {
			return nil, fmt.Errorf("core: term %d has no function", k)
		}
	}

	// Scales. σ comes from the caller or the initial condition; S must
	// cover both the linear gains and the nonlinear coefficient columns
	// after function scaling.
	sigma := opt.Sigma
	if sigma <= 0 {
		sigma = u0.NormInf() / 0.5
		if sg := g.NormInf(); sg > sigma {
			sigma = sg
		}
		if sigma == 0 {
			sigma = 1
		}
	}
	// Bound |φ_k| over the reachable range [−σ, σ].
	fnRange := opt.FnRange
	if fnRange <= 0 {
		for _, term := range terms {
			for i := 0; i <= 64; i++ {
				x := -sigma + 2*sigma*float64(i)/64
				if v := term.Fn(x); v > fnRange {
					fnRange = v
				} else if -v > fnRange {
					fnRange = -v
				}
			}
		}
		if fnRange == 0 {
			fnRange = 1
		}
	}
	// The LUT output carries φ̂·(S·σ)/... — we program the LUT with
	// φ(σx)/fnRange (full LUT range use) and put λ_k = fnRange/(S·σ) on
	// the scatter multipliers: mul gain = c_ik·λ. S must be large enough
	// that every |c_ik|·fnRange/σ ≤ maxGain·margin along with |m_ij|.
	s := matrixScale(m, acc.spec.MaxGain)
	for _, term := range terms {
		for _, c := range term.Coef {
			if c == 0 {
				continue
			}
			need := abs(c) * fnRange / (sigma * acc.spec.MaxGain * margin)
			if need > s {
				s = need
			}
		}
	}

	if err := acc.programNonlinear(m, terms, g, u0, s, sigma, fnRange); err != nil {
		return nil, err
	}
	acc.current = nil

	k := 2 * 3.141592653589793 * acc.spec.Bandwidth
	dtProblem := opt.Duration / float64(opt.SamplePoints)
	dtAnalog := dtProblem * s / k

	traj := &Trajectory{Scaling: Scaling{S: s, Sigma: sigma}}
	timeBase := acc.AnalogTime()
	record := func(t float64) error {
		u, err := acc.readSolution(n, opt.Samples)
		if err != nil {
			return err
		}
		traj.Times = append(traj.Times, t)
		traj.States = append(traj.States, u.Scaled(sigma))
		return nil
	}
	if err := record(0); err != nil {
		return nil, err
	}
	for i := 1; i <= opt.SamplePoints; i++ {
		if err := acc.runFor(dtAnalog); err != nil {
			return nil, err
		}
		exc, err := acc.anyException()
		if err != nil {
			return nil, err
		}
		if exc {
			traj.AnalogTime = acc.AnalogTime() - timeBase
			return traj, fmt.Errorf("core: trajectory overflowed dynamic range at t=%v; re-run with a larger Sigma than %v", float64(i)*dtProblem, sigma)
		}
		if err := record(float64(i) * dtProblem); err != nil {
			return nil, err
		}
	}
	traj.AnalogTime = acc.AnalogTime() - timeBase
	return traj, nil
}

// programNonlinear compiles the linear part like program() and adds, per
// term: a fanout tap on the input variable feeding LUT k, and scatter
// multipliers from the LUT output into each destination integrator.
func (acc *Accelerator) programNonlinear(m Matrix, terms []LUTTerm, g, u0 la.Vector, s, sigma, fnRange float64) error {
	n := m.Dim()
	h, pm := acc.host, acc.pm
	if err := h.CfgReset(); err != nil {
		return fmt.Errorf("core: config reset: %w", err)
	}
	as := newScaledView(m, -s) // du/dt ∝ (b − A·u) with A = −M/S
	nextMul := 0
	nextFanout := 0
	consumers := make([][]uint16, n)
	var programErr error
	for i := 0; i < n && programErr == nil; i++ {
		row := i
		as.VisitRow(row, func(j int, aij float64) {
			if programErr != nil {
				return
			}
			mul := nextMul
			nextMul++
			if err := h.SetMulGain(uint16(mul), -aij); err != nil {
				programErr = fmt.Errorf("core: gain for m[%d][%d]: %w", row, j, err)
				return
			}
			if err := h.SetConn(pm.MultiplierOut(mul), pm.IntegratorIn(row)); err != nil {
				programErr = err
				return
			}
			consumers[j] = append(consumers[j], pm.MultiplierIn(mul, 0))
		})
	}
	if programErr != nil {
		return programErr
	}
	// Bias path.
	acc.biasMulBase = nextMul
	bs := g.Scaled(1 / (s * sigma))
	for i := 0; i < n; i++ {
		mul := nextMul
		nextMul++
		if err := h.SetConn(pm.DACOut(i), pm.MultiplierIn(mul, 0)); err != nil {
			return err
		}
		if err := h.SetConn(pm.MultiplierOut(mul), pm.IntegratorIn(i)); err != nil {
			return err
		}
	}
	if err := acc.setBias(bs); err != nil {
		return err
	}
	// Nonlinear terms: LUT k reads u_{s_k}; its output scatters through
	// multipliers with gain c_ik·fnRange/(S·σ).
	lambda := fnRange / (s * sigma)
	for kIdx, term := range terms {
		consumers[term.Input] = append(consumers[term.Input], pm.LUTIn(kIdx))
		var table [256]byte
		for i := range table {
			x := float64(i)/255*2 - 1
			v := term.Fn(sigma*x) / fnRange
			if v > 1 {
				v = 1
			}
			if v < -1 {
				v = -1
			}
			table[i] = byte((v + 1) / 2 * 255)
		}
		if err := h.SetFunction(uint16(kIdx), table); err != nil {
			return fmt.Errorf("core: LUT %d: %w", kIdx, err)
		}
		// Scatter via a fanout tree on the LUT output.
		var dsts []uint16
		for i, c := range term.Coef {
			if c == 0 {
				continue
			}
			mul := nextMul
			nextMul++
			gain := c * lambda
			if err := h.SetMulGain(uint16(mul), gain); err != nil {
				return fmt.Errorf("core: nonlinear gain term %d row %d: %w", kIdx, i, err)
			}
			if err := h.SetConn(pm.MultiplierOut(mul), pm.IntegratorIn(i)); err != nil {
				return err
			}
			dsts = append(dsts, pm.MultiplierIn(mul, 0))
		}
		switch len(dsts) {
		case 0:
			// A term with an all-zero column: route the LUT output to a
			// dangling fanout so the datapath stays legal.
			if err := h.SetConn(pm.LUTOut(kIdx), pm.FanoutIn(nextFanout)); err != nil {
				return err
			}
			nextFanout++
		case 1:
			if err := h.SetConn(pm.LUTOut(kIdx), dsts[0]); err != nil {
				return err
			}
		default:
			if err := acc.wireTree(pm.LUTOut(kIdx), dsts, &nextFanout); err != nil {
				return err
			}
		}
	}
	// Variable fanout trees (matrix consumers + LUT taps + ADC).
	for j := 0; j < n; j++ {
		dsts := append(consumers[j], pm.ADCIn(j))
		if err := acc.wireTree(pm.IntegratorOut(j), dsts, &nextFanout); err != nil {
			return fmt.Errorf("core: fanout tree for u[%d]: %w", j, err)
		}
	}
	// Initial conditions.
	for i := 0; i < n; i++ {
		if err := h.SetIntInitial(uint16(i), u0[i]/sigma); err != nil {
			return fmt.Errorf("core: initial condition u[%d]: %w", i, err)
		}
	}
	if err := h.CfgCommit(); err != nil {
		return fmt.Errorf("core: commit: %w", err)
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
