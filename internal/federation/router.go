package federation

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"analogacc/internal/la"
	"analogacc/internal/serve"
)

// Config wires one node's router.
type Config struct {
	// Self is this node's advertised address ("host:port" or URL) — its
	// identity in the rendezvous ring. Required when Peers is non-empty.
	Self string
	// Peers are the other nodes' advertised addresses.
	Peers []string
	// PollInterval is the membership refresh period (default 1s).
	PollInterval time.Duration
	// SaturationFrac is the admission-queue fraction past which a peer
	// stops being a routing target (default 0.75).
	SaturationFrac float64
	// Disabled turns affinity off: requests route to a uniformly random
	// healthy member instead of the rendezvous owner. The measurement
	// baseline, and an escape hatch.
	Disabled bool
	// Seed fixes the random-route generator (benchmarks; zero seeds from
	// the clock).
	Seed int64
}

// Router is the federation front of one alad node: it intercepts the
// solve endpoints, picks the rendezvous owner of each request's
// fingerprint over the healthy member set, and either serves locally
// (this node is the target), forwards (a peer is), or falls back down
// the rendezvous ranking when the owner is unavailable. Forwarded
// requests carry X-Alad-Forwarded and are always served locally by the
// receiving node, so no request bounces twice. Every other endpoint
// passes through to the wrapped server untouched; /metrics gains a
// federation section.
type Router struct {
	cfg     Config
	server  *serve.Server
	members *Membership
	metrics *Metrics
	handler http.Handler

	rngMu sync.Mutex
	rng   *rand.Rand
}

// NewRouter wraps a server with federation routing and installs the
// scatter-gather provider so the node's decomposed solves can borrow
// peer chips. Start the membership poller with Start.
func NewRouter(cfg Config, s *serve.Server) *Router {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = time.Second
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rt := &Router{
		cfg:     cfg,
		server:  s,
		members: NewMembership(cfg.Self, cfg.Peers, cfg.PollInterval, cfg.SaturationFrac),
		metrics: NewMetrics(),
		rng:     rand.New(rand.NewSource(seed)),
	}
	s.SetDecompProvider(NewProvider(s.Pool().DecompProvider(), rt.members, rt.metrics))

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", rt.handleSolve)
	mux.HandleFunc("POST /v1/solve/batch", rt.handleSolveBatch)
	mux.HandleFunc("PUT /v1/operators", rt.handleOperatorPut)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	mux.Handle("/", s.Handler())
	rt.handler = mux
	return rt
}

// Handler is the node's HTTP surface with routing in front.
func (rt *Router) Handler() http.Handler { return rt.handler }

// Members exposes the membership table (alad wiring, tests).
func (rt *Router) Members() *Membership { return rt.members }

// Metrics exposes the router metrics (tests, bench).
func (rt *Router) Metrics() *Metrics { return rt.metrics }

// Start launches the membership poller.
func (rt *Router) Start() { rt.members.Start() }

// Stop halts the membership poller.
func (rt *Router) Stop() { rt.members.Stop() }

// route decides where a fingerprint's solve should run: the target
// member, the route label (RouteLocal/Hit/Fallback/Random), and the
// failover candidates after the target (rendezvous order). With
// affinity disabled the target is a uniformly random healthy member.
func (rt *Router) route(fp uint64) (target, label string, next []string) {
	members := rt.members.Members()
	if rt.cfg.Disabled {
		rt.rngMu.Lock()
		target = members[rt.rng.Intn(len(members))]
		rt.rngMu.Unlock()
		return target, RouteRandom, nil
	}
	ranked := Rank(members, fp)
	for i, m := range ranked {
		if !rt.members.Available(m) {
			continue
		}
		label = RouteFallback
		if i == 0 {
			label = RouteHit
		}
		if m == rt.cfg.Self && i == 0 {
			label = RouteLocal
		}
		return m, label, ranked[i+1:]
	}
	// Nobody is available (every peer saturated or down): serve locally
	// rather than reject — local admission gives the honest 429.
	return rt.cfg.Self, RouteFallback, nil
}

// decode strictly unmarshals a request body through serve.DecodeRequest
// (so gzip uploads work on routed endpoints exactly as on a standalone
// node) and books the wire bytes on the wrapped server's per-route
// histogram — routed requests bypass the server's own handlers.
func (rt *Router) decode(w http.ResponseWriter, r *http.Request, route string, req any) bool {
	n, err := serve.DecodeRequest(w, r, 32<<20, req)
	rt.server.Metrics().ObserveRequestBytes(route, n)
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, serve.ErrorResponse{Code: serve.CodeBadRequest, Error: "decoding request: " + err.Error()})
		return false
	}
	return true
}

// writeJSONStatus writes one JSON body and returns its byte count (for
// the response-size histograms; error paths ignore it).
func writeJSONStatus(w http.ResponseWriter, status int, v any) int {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return 0
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data)
	return len(data)
}

// writeClientErr translates a forward's client-side error into the same
// HTTP answer the peer gave (or a 502 for transport failures).
func writeClientErr(w http.ResponseWriter, err error) {
	var busy *serve.BusyError
	if errors.As(err, &busy) {
		w.Header().Set("Retry-After", strconv.Itoa(int((busy.RetryAfter+time.Second-1)/time.Second)))
		writeJSONStatus(w, http.StatusTooManyRequests, serve.ErrorResponse{Code: busy.Code, Error: busy.Error()})
		return
	}
	var remote *serve.RemoteError
	if errors.As(err, &remote) {
		writeJSONStatus(w, remote.StatusCode, serve.ErrorResponse{Code: remote.Code, Error: remote.Message})
		return
	}
	writeJSONStatus(w, http.StatusBadGateway, serve.ErrorResponse{Code: serve.CodeInternal, Error: err.Error()})
}

// retriable reports whether a forward failure should try the next
// candidate: transport errors and 5xx/429 answers mean the peer cannot
// serve right now; a 4xx answer would fail anywhere, so it surfaces.
func retriable(err error) bool {
	var remote *serve.RemoteError
	if errors.As(err, &remote) {
		return remote.StatusCode >= 500
	}
	var busy *serve.BusyError
	if errors.As(err, &busy) {
		return true
	}
	return true // transport-level failure
}

// requestFingerprint resolves the routing fingerprint of one solve: a
// by-reference request's fingerprint parses straight off the wire —
// routing never touches a matrix body — and a by-value request hashes
// its built matrix as before.
func requestFingerprint(ref string, build func() (*la.CSR, error)) (uint64, error) {
	if ref != "" {
		return serve.ParseFingerprint(ref)
	}
	a, err := build()
	if err != nil {
		return 0, err
	}
	return la.Fingerprint(a), nil
}

func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req serve.SolveRequest
	if !rt.decode(w, r, "solve", &req) {
		return
	}
	// A request a peer already routed is served here unconditionally —
	// the loop guard. The entry node stamps Affinity on the way back.
	if r.Header.Get(serve.ForwardedHeader) != "" {
		resp, aerr := rt.server.SolveDecoded(r.Context(), &req)
		if aerr != nil {
			rt.server.WriteAPIError(w, aerr)
			return
		}
		writeJSONStatus(w, http.StatusOK, resp)
		return
	}
	fp, err := requestFingerprint(req.Fingerprint, func() (*la.CSR, error) {
		a, _, err := req.BuildSystem()
		return a, err
	})
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, serve.ErrorResponse{Code: serve.CodeBadRequest, Error: err.Error()})
		return
	}
	target, label, next := rt.route(fp)
	start := time.Now()
	for {
		if target == rt.cfg.Self {
			resp, aerr := rt.server.SolveDecoded(r.Context(), &req)
			if aerr != nil {
				rt.server.WriteAPIError(w, aerr)
				return
			}
			resp.Affinity = label
			rt.metrics.Routed(label, time.Since(start))
			rt.server.Metrics().ObserveResponseBytes("solve", int64(writeJSONStatus(w, http.StatusOK, resp)))
			return
		}
		resp, err := rt.members.Client(target).Solve(r.Context(), req)
		if err == nil {
			resp.Affinity = label
			rt.metrics.Routed(label, time.Since(start))
			rt.server.Metrics().ObserveResponseBytes("solve", int64(writeJSONStatus(w, http.StatusOK, resp)))
			return
		}
		rt.metrics.ForwardError()
		// An unknown_operator answer is a 4xx and surfaces here: only the
		// client can re-register (it holds the matrix; this router never
		// saw more than the fingerprint).
		if !retriable(err) || r.Context().Err() != nil {
			writeClientErr(w, err)
			return
		}
		rt.members.MarkUnhealthy(target)
		target, label = rt.nextTarget(&next)
	}
}

func (rt *Router) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	var req serve.BatchSolveRequest
	if !rt.decode(w, r, "solve_batch", &req) {
		return
	}
	if r.Header.Get(serve.ForwardedHeader) != "" {
		resp, aerr := rt.server.SolveBatchDecoded(r.Context(), &req)
		if aerr != nil {
			rt.server.WriteAPIError(w, aerr)
			return
		}
		writeJSONStatus(w, http.StatusOK, resp)
		return
	}
	fp, err := requestFingerprint(req.Fingerprint, func() (*la.CSR, error) {
		a, _, err := req.BuildSystem()
		return a, err
	})
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, serve.ErrorResponse{Code: serve.CodeBadRequest, Error: err.Error()})
		return
	}
	target, label, next := rt.route(fp)
	start := time.Now()
	for {
		if target == rt.cfg.Self {
			resp, aerr := rt.server.SolveBatchDecoded(r.Context(), &req)
			if aerr != nil {
				rt.server.WriteAPIError(w, aerr)
				return
			}
			resp.Affinity = label
			rt.metrics.Routed(label, time.Since(start))
			rt.server.Metrics().ObserveResponseBytes("solve_batch", int64(writeJSONStatus(w, http.StatusOK, resp)))
			return
		}
		resp, err := rt.members.Client(target).SolveBatch(r.Context(), req)
		if err == nil {
			resp.Affinity = label
			rt.metrics.Routed(label, time.Since(start))
			rt.server.Metrics().ObserveResponseBytes("solve_batch", int64(writeJSONStatus(w, http.StatusOK, resp)))
			return
		}
		rt.metrics.ForwardError()
		if !retriable(err) || r.Context().Err() != nil {
			writeClientErr(w, err)
			return
		}
		rt.members.MarkUnhealthy(target)
		target, label = rt.nextTarget(&next)
	}
}

// handleOperatorPut routes a registration to the fingerprint's
// rendezvous owner, so the operator lands exactly where later
// by-reference solves for it will route. Forwarded registrations (and
// self-owned ones) register locally.
func (rt *Router) handleOperatorPut(w http.ResponseWriter, r *http.Request) {
	var req serve.OperatorRequest
	if !rt.decode(w, r, "operators", &req) {
		return
	}
	if r.Header.Get(serve.ForwardedHeader) != "" {
		info, aerr := rt.server.RegisterOperatorDecoded(&req)
		if aerr != nil {
			rt.server.WriteAPIError(w, aerr)
			return
		}
		writeJSONStatus(w, http.StatusOK, info)
		return
	}
	a, err := req.Build()
	if err != nil {
		writeJSONStatus(w, http.StatusBadRequest, serve.ErrorResponse{Code: serve.CodeBadRequest, Error: err.Error()})
		return
	}
	target, _, next := rt.route(la.Fingerprint(a))
	for {
		if target == rt.cfg.Self {
			info, aerr := rt.server.RegisterOperatorDecoded(&req)
			if aerr != nil {
				rt.server.WriteAPIError(w, aerr)
				return
			}
			rt.server.Metrics().ObserveResponseBytes("operators", int64(writeJSONStatus(w, http.StatusOK, info)))
			return
		}
		info, err := rt.members.Client(target).RegisterOperator(r.Context(), req)
		if err == nil {
			rt.server.Metrics().ObserveResponseBytes("operators", int64(writeJSONStatus(w, http.StatusOK, info)))
			return
		}
		rt.metrics.ForwardError()
		if !retriable(err) || r.Context().Err() != nil {
			writeClientErr(w, err)
			return
		}
		rt.members.MarkUnhealthy(target)
		target, _ = rt.nextTarget(&next)
	}
}

// nextTarget pops the first available failover candidate (fallback
// label), or self as the terminal resort.
func (rt *Router) nextTarget(next *[]string) (string, string) {
	for len(*next) > 0 {
		m := (*next)[0]
		*next = (*next)[1:]
		if m == rt.cfg.Self || rt.members.Available(m) {
			return m, RouteFallback
		}
	}
	return rt.cfg.Self, RouteFallback
}

// handleMetrics renders the wrapped server's /metrics and appends the
// federation section.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt.server.Handler().ServeHTTP(w, r)
	pool := rt.server.Pool()
	var resident int
	for _, c := range pool.Stats() {
		resident += c.Cached
	}
	rt.metrics.writeTo(w, rt.cfg.Self, rt.members.Snapshot(), pool.CacheHits(), pool.CacheMisses(), resident)
}

// PollOnce forces one synchronous membership refresh (tests, smoke).
func (rt *Router) PollOnce(ctx context.Context) { rt.members.PollOnce(ctx) }
