package federation

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"analogacc/internal/serve"
)

// Zipf-operator load generator. Real multi-tenant solve traffic is
// heavy-tailed: a few operators (matrices) account for most requests,
// with a long tail of cold ones. That shape is exactly what decides
// whether fingerprint affinity pays — a hot operator routed consistently
// stays resident on one node's chips, while random routing smears it
// across the cluster and every node keeps re-programming it. RunZipfLoad
// drives that traffic against a set of entry nodes and reports the
// cluster-wide session-cache hit rate plus latency percentiles.

// LoadConfig shapes one load run.
type LoadConfig struct {
	// Entries are the cluster entry points (any subset of the nodes);
	// requests spread across them round-robin, like a load balancer that
	// knows nothing about affinity.
	Entries []string
	// Operators is the distinct-matrix population (default 24).
	Operators int
	// Requests is the total solve count (default 200).
	Requests int
	// Dim is each operator's system order (default 16).
	Dim int
	// Concurrency is the in-flight request cap (default 4).
	Concurrency int
	// ZipfS is the skew exponent (>1; default 1.3 — a hot head of a few
	// operators over a cold tail).
	ZipfS float64
	// Seed fixes the operator sequence (default 1).
	Seed int64
	// Tol loosens the solve tolerance (default 1e-6; load runs care about
	// routing, not precision).
	Tol float64
	// RequestTimeout bounds each individual request (default 30s). Every
	// request gets its own context derived from the run context, so a slow
	// or wedged peer cannot leak generator goroutines past the run.
	RequestTimeout time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Operators <= 0 {
		c.Operators = 24
	}
	if c.Requests <= 0 {
		c.Requests = 200
	}
	if c.Dim <= 0 {
		c.Dim = 16
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	return c
}

// LoadResult is what one run measured.
type LoadResult struct {
	Requests int
	Errors   int
	// ByAffinity counts responses by their routing provenance label.
	ByAffinity map[string]int
	// ClusterHits/ClusterMisses are the session-cache deltas summed over
	// every entry node's /v1/peer/stats between start and finish.
	ClusterHits   int64
	ClusterMisses int64
	// P50/P99 are request-latency percentiles.
	P50, P99 time.Duration
	Elapsed  time.Duration
}

// HitRate is the cluster-wide warm-checkout fraction for the run.
func (r LoadResult) HitRate() float64 {
	if t := r.ClusterHits + r.ClusterMisses; t > 0 {
		return float64(r.ClusterHits) / float64(t)
	}
	return 0
}

// OperatorRequest builds operator k's solve request: a tridiagonal
// diagonally-dominant system whose diagonal varies with k, so every
// operator has a distinct fingerprint but identical structure and cost.
func OperatorRequest(k, dim int, tol float64) serve.SolveRequest {
	req := serve.SolveRequest{N: dim, Tol: tol}
	diag := 4 + float64(k%997)*0.01
	for i := 0; i < dim; i++ {
		req.A = append(req.A, serve.Entry{Row: i, Col: i, Val: diag})
		if i > 0 {
			req.A = append(req.A, serve.Entry{Row: i, Col: i - 1, Val: -1})
		}
		if i < dim-1 {
			req.A = append(req.A, serve.Entry{Row: i, Col: i + 1, Val: -1})
		}
		req.B = append(req.B, 1+float64(i%7))
	}
	return req
}

func cacheCounts(ctx context.Context, clients []*serve.Client) (hits, misses int64) {
	for _, cl := range clients {
		if st, err := cl.PeerStats(ctx); err == nil {
			hits += st.CacheHits
			misses += st.CacheMiss
		}
	}
	return hits, misses
}

// RunZipfLoad drives cfg.Requests zipf-distributed operator solves at
// the entry nodes and measures routing provenance, cluster cache hit
// deltas, and latency percentiles. Deterministic for a fixed seed up to
// goroutine scheduling (the operator sequence and entry assignment are
// fixed; only interleaving varies).
func RunZipfLoad(ctx context.Context, cfg LoadConfig) (LoadResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Entries) == 0 {
		return LoadResult{}, fmt.Errorf("federation: load needs at least one entry node")
	}
	clients := make([]*serve.Client, len(cfg.Entries))
	for i, addr := range cfg.Entries {
		clients[i] = serve.NewClient(addr)
		clients[i].MaxRetries = 3
	}
	hits0, miss0 := cacheCounts(ctx, clients)

	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Operators-1))
	type job struct {
		op    int
		entry int
	}
	jobs := make([]job, cfg.Requests)
	for i := range jobs {
		jobs[i] = job{op: int(zipf.Uint64()), entry: i % len(clients)}
	}

	var (
		mu         sync.Mutex
		latencies  []time.Duration
		byAffinity = make(map[string]int)
		errCount   int
	)
	start := time.Now()
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Concurrency)
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer wg.Done()
			defer func() { <-sem }()
			req := OperatorRequest(j.op, cfg.Dim, cfg.Tol)
			rctx, cancel := context.WithTimeout(ctx, cfg.RequestTimeout)
			t0 := time.Now()
			resp, err := clients[j.entry].Solve(rctx, req)
			d := time.Since(t0)
			cancel()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errCount++
				return
			}
			latencies = append(latencies, d)
			label := resp.Affinity
			if label == "" {
				label = "none"
			}
			byAffinity[label]++
		}(j)
	}
	wg.Wait()
	elapsed := time.Since(start)

	hits1, miss1 := cacheCounts(ctx, clients)
	res := LoadResult{
		Requests:      cfg.Requests,
		Errors:        errCount,
		ByAffinity:    byAffinity,
		ClusterHits:   hits1 - hits0,
		ClusterMisses: miss1 - miss0,
		Elapsed:       elapsed,
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50 = latencies[len(latencies)/2]
		res.P99 = latencies[len(latencies)*99/100]
	}
	return res, nil
}
