package federation

import (
	"context"
	"strconv"
	"sync"
	"time"

	"analogacc/internal/serve"
)

// Membership is the router's live view of the cluster: one entry per
// peer address, refreshed by polling /readyz and /v1/peer/stats on an
// interval. A peer that fails either poll (or a forward) is unhealthy
// until a poll succeeds again; a peer whose admission queue is past the
// saturation fraction (or draining) stays a member but stops being an
// eligible routing target, which is what degrades affinity routing to
// the next-ranked node instead of piling work on a hot one.
type Membership struct {
	self     string
	interval time.Duration
	satFrac  float64

	mu    sync.Mutex
	peers map[string]*peerState

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

type peerState struct {
	addr   string
	client *serve.Client

	mu         sync.Mutex
	healthy    bool
	draining   bool
	queueDepth int
	queueBound int
	extraLanes int64          // in-flight solves holding no admission slot (job waves)
	resident   map[uint64]int // fingerprint → order, from the last stats poll
	nResident  int
	cacheHits  int64
	cacheMiss  int64
	node       string // advertised identity, when the peer reports one
}

// PeerInfo is one peer's polled state, for metrics and tests.
type PeerInfo struct {
	Addr       string
	Node       string
	Healthy    bool
	Draining   bool
	QueueDepth int
	QueueBound int
	ExtraLanes int64
	Resident   int
	CacheHits  int64
	CacheMiss  int64
}

// NewMembership builds the peer table. self is this node's advertised
// address (always a member, never polled — local state is read
// directly); peerAddrs are the other nodes. satFrac is the queue-depth
// fraction past which a peer counts saturated (0 defaults to 0.75).
func NewMembership(self string, peerAddrs []string, interval time.Duration, satFrac float64) *Membership {
	if interval <= 0 {
		interval = time.Second
	}
	if satFrac <= 0 {
		satFrac = 0.75
	}
	m := &Membership{
		self:     self,
		interval: interval,
		satFrac:  satFrac,
		peers:    make(map[string]*peerState),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, addr := range peerAddrs {
		if addr == "" || addr == self {
			continue
		}
		cl := serve.NewClient(addr)
		cl.Forwarded = true
		m.peers[addr] = &peerState{addr: addr, client: cl}
	}
	return m
}

// Start launches the poll loop (one immediate sweep, then every
// interval). Stop with Stop.
func (m *Membership) Start() {
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		m.PollOnce(context.Background())
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.PollOnce(context.Background())
			}
		}
	}()
}

// Stop halts the poll loop and waits for it to exit.
func (m *Membership) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}

// PollOnce refreshes every peer concurrently: /readyz gates health,
// /v1/peer/stats fills residency and load. Exposed so tests and the
// smoke gauntlet can force a deterministic refresh instead of sleeping
// through a ticker.
func (m *Membership) PollOnce(ctx context.Context) {
	m.mu.Lock()
	states := make([]*peerState, 0, len(m.peers))
	for _, ps := range m.peers {
		states = append(states, ps)
	}
	m.mu.Unlock()
	var wg sync.WaitGroup
	for _, ps := range states {
		wg.Add(1)
		go func(ps *peerState) {
			defer wg.Done()
			ps.poll(ctx, m.interval)
		}(ps)
	}
	wg.Wait()
}

func (ps *peerState) poll(ctx context.Context, interval time.Duration) {
	// Each probe gets at most one poll interval so a hung peer cannot
	// stall the sweep past the next tick.
	cctx, cancel := context.WithTimeout(ctx, interval)
	defer cancel()
	ready := ps.client.Readyz(cctx) == nil
	stats, serr := ps.client.PeerStats(cctx)

	ps.mu.Lock()
	defer ps.mu.Unlock()
	// Liveness is the stats round trip: a saturated node still answers
	// stats, and we want its residency view even while not routing to it.
	ps.healthy = serr == nil
	if serr != nil {
		ps.draining = false
		ps.queueDepth, ps.queueBound = 0, 0
		ps.resident, ps.nResident = nil, 0
		return
	}
	ps.draining = stats.Draining || !ready
	ps.queueDepth, ps.queueBound = stats.QueueDepth, stats.QueueBound
	ps.extraLanes = stats.ExtraLanes
	ps.cacheHits, ps.cacheMiss = stats.CacheHits, stats.CacheMiss
	ps.node = stats.Node
	res := make(map[uint64]int, len(stats.Resident))
	for _, r := range stats.Resident {
		if fp, err := strconv.ParseUint(r.FP, 16, 64); err == nil {
			res[fp] = r.N
		}
	}
	ps.resident, ps.nResident = res, len(res)
}

// MarkUnhealthy drops a peer from routing immediately (a forward just
// failed); the next successful poll readmits it.
func (m *Membership) MarkUnhealthy(addr string) {
	m.mu.Lock()
	ps := m.peers[addr]
	m.mu.Unlock()
	if ps == nil {
		return
	}
	ps.mu.Lock()
	ps.healthy = false
	ps.mu.Unlock()
}

// Members returns every healthy member including self, sorted order not
// guaranteed. This is the HRW candidate set: saturation does not remove
// a node here (its keys should not migrate just because it is busy) —
// eligibility is checked per-route with Available.
func (m *Membership) Members() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := []string{m.self}
	for addr, ps := range m.peers {
		ps.mu.Lock()
		ok := ps.healthy
		ps.mu.Unlock()
		if ok {
			out = append(out, addr)
		}
	}
	return out
}

// Available reports whether addr can take new work right now: self is
// always available (local admission applies its own backpressure);
// peers must be healthy, not draining, and below the saturation
// fraction of their admission queue.
func (m *Membership) Available(addr string) bool {
	if addr == m.self {
		return true
	}
	m.mu.Lock()
	ps := m.peers[addr]
	m.mu.Unlock()
	if ps == nil {
		return false
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.healthy || ps.draining {
		return false
	}
	// Coalesced job waves solve without holding admission slots, so the
	// advertised extra lanes are added in: saturation gating must see the
	// chips' true load, not just the HTTP queue.
	load := float64(ps.queueDepth) + float64(ps.extraLanes)
	if ps.queueBound > 0 && load >= m.satFrac*float64(ps.queueBound) {
		return false
	}
	return true
}

// Client returns the peer's client (nil for self or unknown addresses).
func (m *Membership) Client(addr string) *serve.Client {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ps := m.peers[addr]; ps != nil {
		return ps.client
	}
	return nil
}

// Holds reports whether the peer's last stats poll advertised the
// fingerprint resident (false for self; the caller checks its own pool).
func (m *Membership) Holds(addr string, fp uint64) bool {
	m.mu.Lock()
	ps := m.peers[addr]
	m.mu.Unlock()
	if ps == nil {
		return false
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	_, ok := ps.resident[fp]
	return ok
}

// Snapshot returns every peer's polled state (metrics, tests).
func (m *Membership) Snapshot() []PeerInfo {
	m.mu.Lock()
	states := make([]*peerState, 0, len(m.peers))
	for _, ps := range m.peers {
		states = append(states, ps)
	}
	m.mu.Unlock()
	out := make([]PeerInfo, 0, len(states))
	for _, ps := range states {
		ps.mu.Lock()
		out = append(out, PeerInfo{
			Addr:       ps.addr,
			Node:       ps.node,
			Healthy:    ps.healthy,
			Draining:   ps.draining,
			QueueDepth: ps.queueDepth,
			QueueBound: ps.queueBound,
			ExtraLanes: ps.extraLanes,
			Resident:   ps.nResident,
			CacheHits:  ps.cacheHits,
			CacheMiss:  ps.cacheMiss,
		})
		ps.mu.Unlock()
	}
	return out
}
