package federation

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"

	"analogacc/internal/serve"
)

// LocalCluster is an in-process federation: n serve.Servers, each
// wrapped by a Router, listening on loopback ports. Benchmarks and the
// alabench federation experiment use it to measure routing policies
// without spawning daemons; the smoke gauntlet exercises the real
// multi-process path.
type LocalCluster struct {
	Nodes   []*LocalNode
	stopped bool
}

// LocalNode is one member of a LocalCluster.
type LocalNode struct {
	Server   *serve.Server
	Router   *Router
	URL      string
	listener net.Listener
	httpSrv  *http.Server
	handler  *swapHandlerLC
}

// swapHandlerLC lets the listener come up before the router exists (the
// router's identity is the listener's address).
type swapHandlerLC struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandlerLC) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandlerLC) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	h.ServeHTTP(w, r)
}

// StartLocalCluster boots n nodes with identical pools on loopback
// listeners, wires their routers (affinity disabled when disabled), and
// refreshes membership once so routing works immediately.
func StartLocalCluster(n int, pool serve.PoolConfig, disabled bool) (*LocalCluster, error) {
	lc := &LocalCluster{}
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := serve.New(serve.Config{Pool: pool, NodeName: fmt.Sprintf("node%d", i), JobWorkers: -1})
		if err != nil {
			lc.Close()
			return nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			s.Close()
			lc.Close()
			return nil, err
		}
		sh := &swapHandlerLC{h: s.Handler()}
		hs := &http.Server{Handler: sh}
		go hs.Serve(ln)
		node := &LocalNode{
			Server:   s,
			URL:      "http://" + ln.Addr().String(),
			listener: ln,
			httpSrv:  hs,
			handler:  sh,
		}
		lc.Nodes = append(lc.Nodes, node)
		urls[i] = node.URL
	}
	for i, node := range lc.Nodes {
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		node.Router = NewRouter(Config{Self: urls[i], Peers: peers, Disabled: disabled, Seed: 1}, node.Server)
		node.handler.set(node.Router.Handler())
	}
	lc.PollAll()
	return lc, nil
}

// URLs lists every node's entry address.
func (lc *LocalCluster) URLs() []string {
	out := make([]string, len(lc.Nodes))
	for i, nd := range lc.Nodes {
		out[i] = nd.URL
	}
	return out
}

// PollAll refreshes every node's membership synchronously.
func (lc *LocalCluster) PollAll() {
	for _, nd := range lc.Nodes {
		if nd.Router != nil {
			nd.Router.PollOnce(context.Background())
		}
	}
}

// Close shuts every node down.
func (lc *LocalCluster) Close() {
	if lc.stopped {
		return
	}
	lc.stopped = true
	for _, nd := range lc.Nodes {
		if nd.httpSrv != nil {
			nd.httpSrv.Close()
		}
		if nd.Server != nil {
			nd.Server.Close()
		}
	}
}
