package federation

import (
	"context"
	"fmt"
	"time"

	"analogacc/internal/core"
	"analogacc/internal/la"
	"analogacc/internal/serve"
)

// Provider is the federation's core.WorkerProvider: a decomposed solve
// fans its blocks out over the local pool's chips first, then — when the
// system wants more workers than the local pool can lend — over healthy
// peer nodes, each reached through POST /v1/peer/block. A peer worker
// behaves exactly like a chip: its block matrix stays resident in the
// peer's pool between sweeps (the peer's own session cache adopts it on
// every call), and its odometer deltas flow back in each response so
// DecomposeStats count remote analog seconds and configurations like
// local ones. Results are bit-identical to an all-local solve because
// the engine's Jacobi schedule is worker-count-independent and the peer
// runs the same deterministic chip simulation.
type Provider struct {
	local   *serve.PoolProvider
	members *Membership
	metrics *Metrics
}

// NewProvider wires the scatter-gather provider. local is the node's own
// pool provider; members supplies healthy peers; metrics (optional)
// counts scattered block traffic.
func NewProvider(local *serve.PoolProvider, members *Membership, metrics *Metrics) *Provider {
	return &Provider{local: local, members: members, metrics: metrics}
}

// AcquireChips implements core.SessionProvider by delegation; the engine
// prefers AcquireWorkers and never calls this when the provider also
// implements WorkerProvider, but the interface requires it.
func (p *Provider) AcquireChips(ctx context.Context, sample core.Matrix, want int) ([]*core.Accelerator, func(), error) {
	return p.local.AcquireChips(ctx, sample, want)
}

// MaxBlockSize implements core.BlockSizer with the local pool's
// capacity. The cluster is homogeneous by configuration (every node's
// classes use the same specs), so local capacity is cluster capacity.
func (p *Provider) MaxBlockSize(a *la.CSR) int { return p.local.MaxBlockSize(a) }

// AcquireWorkers implements core.WorkerProvider: local chips first (one
// blocking checkout, the rest opportunistic), then one remote worker per
// available peer until want is met. Remote lanes only join when the
// local pool is exhausted — a local chip is always cheaper than a wire
// round trip per sweep.
func (p *Provider) AcquireWorkers(ctx context.Context, sample core.Matrix, want int) ([]core.BlockWorker, func(), error) {
	accs, release, err := p.local.AcquireChips(ctx, sample, want)
	if err != nil {
		return nil, nil, err
	}
	workers := make([]core.BlockWorker, 0, want)
	for _, acc := range accs {
		workers = append(workers, localWorker{acc: acc})
	}
	if p.members != nil {
		for _, addr := range p.members.Members() {
			if len(workers) >= want {
				break
			}
			if !p.members.Available(addr) {
				continue
			}
			cl := p.members.Client(addr)
			if cl == nil { // self
				continue
			}
			workers = append(workers, &remoteWorker{addr: addr, client: cl, members: p.members, metrics: p.metrics})
		}
	}
	return workers, release, nil
}

// localWorker adapts a pooled accelerator to core.BlockWorker (the same
// shape core uses internally for plain providers).
type localWorker struct{ acc *core.Accelerator }

func (w localWorker) OpenBlock(a *la.CSR) (core.BlockSession, error) { return w.acc.BeginSession(a) }

func (w localWorker) Odometer() (float64, int, int) {
	return w.acc.AnalogTime(), w.acc.Runs(), w.acc.Configurations()
}

// remoteWorker is one peer node acting as a block lane. The engine
// drives each worker from a single goroutine and reads odometers only
// before launch and after the sweeps join, so the accumulators need no
// locking.
type remoteWorker struct {
	addr    string
	client  *serve.Client
	members *Membership
	metrics *Metrics

	analogSeconds float64
	runs, configs int
}

func (w *remoteWorker) Odometer() (float64, int, int) { return w.analogSeconds, w.runs, w.configs }

func (w *remoteWorker) OpenBlock(a *la.CSR) (core.BlockSession, error) {
	// Serialize the block once; the first sweep ships it in full and the
	// serving node implicitly registers it, so every later sweep sends
	// only the fingerprint and the items — O(n·items) per sweep instead
	// of O(nnz). The peer's session cache recognizes the fingerprint on
	// call 2+ and adopts the resident programming, so only the first call
	// pays configuration cost too.
	n := a.Dim()
	entries := make([]serve.Entry, 0, a.NNZ())
	for i := 0; i < n; i++ {
		a.VisitRow(i, func(j int, v float64) {
			entries = append(entries, serve.Entry{Row: i, Col: j, Val: v})
		})
	}
	return &remoteSession{w: w, n: n, entries: entries, fp: serve.FormatFingerprint(la.Fingerprint(a))}, nil
}

type remoteSession struct {
	w       *remoteWorker
	n       int
	entries []serve.Entry
	fp      string
	// registered tracks whether the peer reports the block addressable by
	// fingerprint (the response's Registered echo); only then do later
	// sweeps go by reference. The engine drives each session from one
	// goroutine, so no locking.
	registered bool
}

// SolveBatchRefinedItems implements core.BlockSession over the wire.
func (s *remoteSession) SolveBatchRefinedItems(ctx context.Context, items []core.BatchItem, opt core.SolveOptions) ([]la.Vector, []core.Stats, []float64, error) {
	req := serve.BlockSolveRequest{
		N:     s.n,
		Items: make([]serve.BlockWireItem, len(items)),
		Opt:   serve.BlockOptionsFromCore(opt),
	}
	if s.registered {
		req.Fingerprint = s.fp
	} else {
		req.A = s.entries
	}
	for i, it := range items {
		req.Items[i] = serve.BlockWireItem{
			RHS:       append([]float64(nil), it.RHS...),
			Guess:     append([]float64(nil), it.Guess...),
			SigmaGain: it.SigmaGain,
		}
	}
	if dl, ok := ctx.Deadline(); ok {
		if ms := int(time.Until(dl).Milliseconds()); ms > 0 {
			req.TimeoutMs = ms
		}
	}
	if s.w.metrics != nil {
		s.w.metrics.BlockScatter(len(items))
	}
	resp, err := s.w.client.SolveBlock(ctx, req)
	if err != nil && s.registered && serve.IsUnknownOperator(err) {
		// The peer evicted (or restarted since) the block: fall back to
		// one full send, which re-registers it for the next sweep.
		s.registered = false
		req.Fingerprint = ""
		req.A = s.entries
		resp, err = s.w.client.SolveBlock(ctx, req)
	}
	if err != nil {
		if s.w.members != nil {
			s.w.members.MarkUnhealthy(s.w.addr)
		}
		if s.w.metrics != nil {
			s.w.metrics.ForwardError()
		}
		return nil, nil, nil, fmt.Errorf("federation: block solve on %s: %w", s.w.addr, err)
	}
	// Trust the peer's word over the send's success: a full send whose
	// implicit registration did not stick (block over the peer's registry
	// byte cap) answers Registered=false, and attempting by-reference
	// anyway would buy a guaranteed unknown_operator 404 plus a full
	// resend on every later sweep.
	s.registered = resp.Registered
	if len(resp.Results) != len(items) {
		return nil, nil, nil, fmt.Errorf("federation: peer %s answered %d results for %d items", s.w.addr, len(resp.Results), len(items))
	}
	s.w.analogSeconds += resp.AnalogSeconds
	s.w.runs += resp.Runs
	s.w.configs += resp.Configs
	us := make([]la.Vector, len(resp.Results))
	sts := make([]core.Stats, len(resp.Results))
	gains := make([]float64, len(resp.Results))
	for i, r := range resp.Results {
		us[i] = la.Vector(r.U)
		sts[i] = core.Stats{Refinements: r.Refinements, Runs: r.Runs}
		gains[i] = r.SigmaGain
	}
	return us, sts, gains, nil
}
