package federation

import (
	"context"
	"testing"

	"analogacc/internal/serve"
)

// Bench suite 7: zipf-operator load against a 3-node in-process
// federation. The three benchmarks compare routing policies on the same
// traffic: fingerprint affinity, affinity disabled (random member), and
// a single node with no peers. Each reports the cluster-wide
// session-cache hit rate plus latency percentiles via ReportMetric so
// scripts/bench.sh captures them into BENCH_7.json.

func benchPool() serve.PoolConfig {
	return serve.PoolConfig{ChipsPerClass: 4, WarmSizes: []int{2}, MinClass: 2, MaxDim: 32}
}

func runZipfBench(b *testing.B, nodes int, disabled bool) {
	b.Helper()
	lc, err := StartLocalCluster(nodes, benchPool(), disabled)
	if err != nil {
		b.Fatal(err)
	}
	defer lc.Close()
	ctx := context.Background()
	cfg := LoadConfig{Entries: lc.URLs()}
	b.ResetTimer()
	var last LoadResult
	for i := 0; i < b.N; i++ {
		res, err := RunZipfLoad(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Errors > 0 {
			b.Fatalf("%d/%d requests failed", res.Errors, res.Requests)
		}
		last = res
	}
	b.StopTimer()
	b.ReportMetric(last.HitRate(), "hit_rate")
	b.ReportMetric(float64(last.P50.Microseconds())/1000, "p50_ms")
	b.ReportMetric(float64(last.P99.Microseconds())/1000, "p99_ms")
	b.ReportMetric(float64(last.Requests)/last.Elapsed.Seconds(), "solves/s")
}

func BenchmarkZipfFederated(b *testing.B)        { runZipfBench(b, 3, false) }
func BenchmarkZipfAffinityDisabled(b *testing.B) { runZipfBench(b, 3, true) }
func BenchmarkZipfSingleNode(b *testing.B)       { runZipfBench(b, 1, false) }
