package federation

import (
	"fmt"
	"math/rand"
	"testing"
)

func memberNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:8080", i+1)
	}
	return out
}

// Rendezvous hashing must give every router the same answer no matter
// what order its membership table happens to enumerate in.
func TestRendezvousDeterministicAcrossOrderings(t *testing.T) {
	members := memberNames(7)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		key := rng.Uint64()
		owner := Owner(members, key)
		rank := Rank(members, key)
		if rank[0] != owner {
			t.Fatalf("Rank[0] = %q, Owner = %q", rank[0], owner)
		}
		shuffled := append([]string(nil), members...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		if got := Owner(shuffled, key); got != owner {
			t.Fatalf("key %x: owner %q under one ordering, %q under another", key, owner, got)
		}
		gotRank := Rank(shuffled, key)
		for i := range rank {
			if gotRank[i] != rank[i] {
				t.Fatalf("key %x: rank[%d] = %q vs %q across orderings", key, i, gotRank[i], rank[i])
			}
		}
	}
}

// The HRW property: removing one member reassigns only that member's
// keys (everything else keeps its owner), so a node leaving moves ~1/N
// of the keyspace, not a full reshuffle.
func TestRendezvousMinimalMovementOnLeave(t *testing.T) {
	members := memberNames(8)
	const keys = 20000
	rng := rand.New(rand.NewSource(7))
	removed := members[3]
	kept := append(append([]string(nil), members[:3]...), members[4:]...)
	moved, ownedByRemoved := 0, 0
	for i := 0; i < keys; i++ {
		key := rng.Uint64()
		before := Owner(members, key)
		after := Owner(kept, key)
		if before == removed {
			ownedByRemoved++
			if after == removed {
				t.Fatalf("removed member still owns key %x", key)
			}
			continue
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d keys not owned by the removed member changed owner", moved)
	}
	// The removed member's share should be ~1/8 of the keyspace; allow a
	// wide statistical band. A pathological hash would put ~0 or ~all
	// keys on one member.
	frac := float64(ownedByRemoved) / keys
	if frac < 0.5/8 || frac > 2.0/8 {
		t.Fatalf("removed member owned %.3f of keys; want ≈ 1/8", frac)
	}
}

// The join direction: a new member claims ~1/(N+1) of the keys and
// steals none it shouldn't — keys it doesn't claim keep their owner.
func TestRendezvousMinimalMovementOnJoin(t *testing.T) {
	members := memberNames(7)
	joined := append(append([]string(nil), members...), "10.0.0.99:8080")
	const keys = 20000
	rng := rand.New(rand.NewSource(11))
	claimed := 0
	for i := 0; i < keys; i++ {
		key := rng.Uint64()
		before := Owner(members, key)
		after := Owner(joined, key)
		if after == "10.0.0.99:8080" {
			claimed++
			continue
		}
		if before != after {
			t.Fatalf("key %x moved %q → %q without the new member claiming it", key, before, after)
		}
	}
	frac := float64(claimed) / keys
	if frac < 0.5/8 || frac > 2.0/8 {
		t.Fatalf("new member claimed %.3f of keys; want ≈ 1/8", frac)
	}
}

// Failover: when the owner drops out of the candidate set, the key
// lands exactly on the second-ranked member — the deterministic
// fallback every router agrees on.
func TestRendezvousFailoverReRouting(t *testing.T) {
	members := memberNames(5)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		key := rng.Uint64()
		rank := Rank(members, key)
		survivors := make([]string, 0, len(members)-1)
		for _, m := range members {
			if m != rank[0] {
				survivors = append(survivors, m)
			}
		}
		if got := Owner(survivors, key); got != rank[1] {
			t.Fatalf("key %x: failover owner %q, want second-ranked %q", key, got, rank[1])
		}
	}
}
