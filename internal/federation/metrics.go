package federation

import (
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Metrics is the router tier's observability: where requests were routed
// (local / affinity hit forward / fallback forward / random), forward
// failures, a routed-request latency histogram labelled by route class,
// and — aggregated from the last membership poll plus the local pool —
// the cluster-wide session-cache hit rate and per-node residency gauges.
// Rendered as a Prometheus text section the router appends to the
// node's /metrics.
type Metrics struct {
	local    atomic.Int64 // served here, this node is the affinity owner
	hit      atomic.Int64 // forwarded to the affinity owner
	fallback atomic.Int64 // owner unavailable → next-ranked healthy node
	random   atomic.Int64 // affinity disabled → random healthy node
	errors   atomic.Int64 // forwards that failed (peer marked unhealthy)
	blockOut atomic.Int64 // block batches scattered to peers
	blockIn  atomic.Int64 // block items in those batches

	latBounds []float64
	// One histogram per route class, same buckets: tail latency of a
	// forwarded request vs a local one is the routing tax made visible.
	lat map[string]*histogram
}

type histogram struct {
	counts []atomic.Int64
	sumUs  atomic.Int64
	n      atomic.Int64
}

func (h *histogram) observe(bounds []float64, d time.Duration) {
	i := sort.SearchFloat64s(bounds, d.Seconds())
	h.counts[i].Add(1)
	h.sumUs.Add(d.Microseconds())
	h.n.Add(1)
}

// Route labels, also stamped into SolveResponse.Affinity.
const (
	RouteLocal    = "local"
	RouteHit      = "hit"
	RouteFallback = "fallback"
	RouteRandom   = "random"
)

// NewMetrics returns a zeroed metrics set.
func NewMetrics() *Metrics {
	bounds := []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	m := &Metrics{latBounds: bounds, lat: make(map[string]*histogram)}
	for _, r := range []string{RouteLocal, RouteHit, RouteFallback, RouteRandom} {
		m.lat[r] = &histogram{counts: make([]atomic.Int64, len(bounds)+1)}
	}
	return m
}

// Routed records one routed request's class and latency.
func (m *Metrics) Routed(route string, d time.Duration) {
	switch route {
	case RouteLocal:
		m.local.Add(1)
	case RouteHit:
		m.hit.Add(1)
	case RouteFallback:
		m.fallback.Add(1)
	case RouteRandom:
		m.random.Add(1)
	default:
		return
	}
	m.lat[route].observe(m.latBounds, d)
}

// ForwardError records a forward that failed over to the next candidate.
func (m *Metrics) ForwardError() { m.errors.Add(1) }

// BlockScatter records one block batch shipped to a peer.
func (m *Metrics) BlockScatter(items int) {
	m.blockOut.Add(1)
	m.blockIn.Add(int64(items))
}

// Counts returns the per-route totals (tests, bench reporting).
func (m *Metrics) Counts() (local, hit, fallback, random, errors int64) {
	return m.local.Load(), m.hit.Load(), m.fallback.Load(), m.random.Load(), m.errors.Load()
}

// ClusterCache is the cluster-wide session-cache aggregate: the local
// pool's counters plus every healthy peer's last-polled counters.
type ClusterCache struct {
	Hits   int64
	Misses int64
	Nodes  int
}

// HitRate is hits / (hits + misses), zero before any traffic.
func (c ClusterCache) HitRate() float64 {
	if t := c.Hits + c.Misses; t > 0 {
		return float64(c.Hits) / float64(t)
	}
	return 0
}

// writeTo renders the federation section of /metrics. peers is the
// membership snapshot; localHits/localMisses/localResident come from the
// node's own pool so the cluster aggregate covers all members.
func (m *Metrics) writeTo(w io.Writer, self string, peers []PeerInfo, localHits, localMisses int64, localResident int) {
	fmt.Fprint(w, "# TYPE alad_fed_routed_total counter\n")
	for _, r := range []struct {
		route string
		n     int64
	}{
		{RouteLocal, m.local.Load()}, {RouteHit, m.hit.Load()},
		{RouteFallback, m.fallback.Load()}, {RouteRandom, m.random.Load()},
	} {
		fmt.Fprintf(w, "alad_fed_routed_total{route=%q} %d\n", r.route, r.n)
	}
	fmt.Fprintf(w, "# TYPE alad_fed_forward_errors_total counter\nalad_fed_forward_errors_total %d\n", m.errors.Load())
	fmt.Fprintf(w, "# TYPE alad_fed_block_batches_total counter\nalad_fed_block_batches_total %d\n", m.blockOut.Load())
	fmt.Fprintf(w, "# TYPE alad_fed_block_items_total counter\nalad_fed_block_items_total %d\n", m.blockIn.Load())

	// Membership and per-node residency, self included.
	fmt.Fprint(w, "# TYPE alad_fed_member_healthy gauge\n# TYPE alad_fed_member_resident gauge\n# TYPE alad_fed_member_queue_depth gauge\n")
	fmt.Fprintf(w, "alad_fed_member_healthy{node=%q} 1\n", self)
	fmt.Fprintf(w, "alad_fed_member_resident{node=%q} %d\n", self, localResident)
	cluster := ClusterCache{Hits: localHits, Misses: localMisses, Nodes: 1}
	ordered := append([]PeerInfo(nil), peers...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Addr < ordered[j].Addr })
	for _, p := range ordered {
		up := 0
		if p.Healthy {
			up = 1
			cluster.Hits += p.CacheHits
			cluster.Misses += p.CacheMiss
			cluster.Nodes++
		}
		fmt.Fprintf(w, "alad_fed_member_healthy{node=%q} %d\n", p.Addr, up)
		fmt.Fprintf(w, "alad_fed_member_resident{node=%q} %d\n", p.Addr, p.Resident)
		fmt.Fprintf(w, "alad_fed_member_queue_depth{node=%q} %d\n", p.Addr, p.QueueDepth)
	}
	fmt.Fprintf(w, "# TYPE alad_fed_cluster_cache_hits_total counter\nalad_fed_cluster_cache_hits_total %d\n", cluster.Hits)
	fmt.Fprintf(w, "# TYPE alad_fed_cluster_cache_misses_total counter\nalad_fed_cluster_cache_misses_total %d\n", cluster.Misses)
	fmt.Fprintf(w, "# TYPE alad_fed_cluster_cache_hit_rate gauge\nalad_fed_cluster_cache_hit_rate %g\n", cluster.HitRate())
	fmt.Fprintf(w, "# TYPE alad_fed_cluster_nodes gauge\nalad_fed_cluster_nodes %d\n", cluster.Nodes)

	fmt.Fprint(w, "# TYPE alad_fed_request_seconds histogram\n")
	for _, route := range []string{RouteLocal, RouteHit, RouteFallback, RouteRandom} {
		h := m.lat[route]
		var cum int64
		for i, bound := range m.latBounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "alad_fed_request_seconds_bucket{route=%q,le=\"%g\"} %d\n", route, bound, cum)
		}
		cum += h.counts[len(m.latBounds)].Load()
		fmt.Fprintf(w, "alad_fed_request_seconds_bucket{route=%q,le=\"+Inf\"} %d\n", route, cum)
		fmt.Fprintf(w, "alad_fed_request_seconds_sum{route=%q} %g\n", route, float64(h.sumUs.Load())/1e6)
		fmt.Fprintf(w, "alad_fed_request_seconds_count{route=%q} %d\n", route, h.n.Load())
	}
}
