// Package federation is the router tier that makes the chip pool's
// session cache cluster-wide. One alad node keeps a matrix resident only
// until its own pool evicts it; a federation consistent-hashes every
// solve by the operator's fingerprint (rendezvous/HRW hashing over the
// healthy member set) so repeat traffic for an operator always lands on
// the same node — the one whose pool already holds it programmed. The
// paper's cost asymmetry is the whole motivation: programming a matrix
// onto the analog fabric is the expensive step, re-settling a resident
// one is nearly free, so the scheduler's job is to maximize residency
// hits. Health-gated membership degrades routing to the next-ranked
// healthy node when the affinity owner is down or saturated, and
// oversized systems scatter-gather across peers through the
// core.ParallelDecompose worker seam.
package federation

import "sort"

// FNV-1a, the same hash family la.Fingerprint uses. Rendezvous hashing
// needs nothing fancier: score(member, key) must be deterministic,
// well-mixed, and independent across members, which FNV-1a over
// member-name-then-key-bytes gives.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// score is the HRW weight of one member for one key. The member name
// folds in first, then the key's eight bytes, so two members' scores for
// the same key are unrelated hash states.
func score(member string, key uint64) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(member); i++ {
		h ^= uint64(member[i])
		h *= fnvPrime64
	}
	for i := 0; i < 8; i++ {
		h ^= (key >> (8 * i)) & 0xff
		h *= fnvPrime64
	}
	return h
}

// Owner returns the rendezvous winner — the member every router in the
// cluster independently agrees should hold this key resident. Empty
// members returns "".
func Owner(members []string, key uint64) string {
	var best string
	var bestScore uint64
	for _, m := range members {
		s := score(m, key)
		// Ties break toward the lexically larger name so the choice is
		// total and ordering-independent.
		if best == "" || s > bestScore || (s == bestScore && m > best) {
			best, bestScore = m, s
		}
	}
	return best
}

// Rank orders members by descending rendezvous score for the key: the
// owner first, then the failover sequence every router agrees on. The
// input is not mutated; the output is independent of input ordering.
func Rank(members []string, key uint64) []string {
	out := append([]string(nil), members...)
	scores := make(map[string]uint64, len(out))
	for _, m := range out {
		scores[m] = score(m, key)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := scores[out[i]], scores[out[j]]
		if si != sj {
			return si > sj
		}
		return out[i] > out[j]
	})
	return out
}
