package federation

import (
	"context"
	"fmt"
	"strings"

	"analogacc/internal/la"
	"analogacc/internal/serve"
)

// MultiClient is the client-side half of fingerprint affinity: it holds
// one serve.Client per cluster entry point and sends each solve to the
// rendezvous owner of the request's fingerprint first, falling back down
// the rank (and finally across the remaining endpoints) on failure. When
// the caller's endpoint list matches the nodes' advertised URLs this
// lands the request directly on the resident node with no forwarding
// hop; when it doesn't, the receiving router forwards and the request
// still ends up in the right place — client-side ranking is an
// optimization, not a correctness requirement.
type MultiClient struct {
	endpoints []string
	clients   map[string]*serve.Client
}

// NormalizeURL gives bare host:port addresses an http scheme and strips
// a trailing slash so endpoint strings compare equal to advertised node
// identities no matter how the user spelled them.
func NormalizeURL(s string) string {
	s = strings.TrimSpace(s)
	if s == "" {
		return ""
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	return strings.TrimRight(s, "/")
}

// SplitEndpoints parses a comma-separated endpoint list flag.
func SplitEndpoints(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if u := NormalizeURL(f); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// NewMultiClient builds one client per endpoint; configure (optional)
// runs on each, for MaxRetries/Tenant and friends.
func NewMultiClient(addrs []string, configure func(*serve.Client)) (*MultiClient, error) {
	m := &MultiClient{clients: make(map[string]*serve.Client)}
	for _, a := range addrs {
		u := NormalizeURL(a)
		if u == "" {
			continue
		}
		if _, dup := m.clients[u]; dup {
			continue
		}
		c := serve.NewClient(u)
		if configure != nil {
			configure(c)
		}
		m.endpoints = append(m.endpoints, u)
		m.clients[u] = c
	}
	if len(m.endpoints) == 0 {
		return nil, fmt.Errorf("federation: no endpoints")
	}
	return m, nil
}

// Endpoints returns the normalized endpoint list in input order.
func (m *MultiClient) Endpoints() []string {
	return append([]string(nil), m.endpoints...)
}

// Primary is the first endpoint — the one non-affinity operations
// (async jobs, job polling) should use.
func (m *MultiClient) Primary() *serve.Client { return m.clients[m.endpoints[0]] }

// order ranks the endpoints for one request: rendezvous order on the
// request fingerprint (parsed straight off a by-reference request,
// hashed from the built system otherwise), input order when the request
// doesn't parse (the server will reject it with a proper error).
func (m *MultiClient) order(req *serve.SolveRequest) []string {
	if len(m.endpoints) == 1 {
		return m.endpoints
	}
	fp, err := requestFingerprint(req.Fingerprint, func() (*la.CSR, error) {
		a, _, err := req.BuildSystem()
		return a, err
	})
	if err != nil {
		return m.endpoints
	}
	return Rank(m.endpoints, fp)
}

// Solve sends the request to the fingerprint's rendezvous owner among
// the configured endpoints, walking down the rank on retriable failures.
// It returns the response plus the endpoint that answered.
func (m *MultiClient) Solve(ctx context.Context, req serve.SolveRequest) (*serve.SolveResponse, string, error) {
	var lastErr error
	for _, ep := range m.order(&req) {
		resp, err := m.clients[ep].Solve(ctx, req)
		if err == nil {
			return resp, ep, nil
		}
		lastErr = err
		if ctx.Err() != nil || !retriable(err) {
			return nil, ep, err
		}
	}
	return nil, "", lastErr
}

// SolveBatch is Solve's multi-RHS counterpart with the same endpoint
// ranking and failover walk.
func (m *MultiClient) SolveBatch(ctx context.Context, req serve.BatchSolveRequest) (*serve.BatchSolveResponse, string, error) {
	order := m.endpoints
	if len(m.endpoints) > 1 {
		if fp, err := requestFingerprint(req.Fingerprint, func() (*la.CSR, error) {
			a, _, err := req.BuildSystem()
			return a, err
		}); err == nil {
			order = Rank(m.endpoints, fp)
		}
	}
	var lastErr error
	for _, ep := range order {
		resp, err := m.clients[ep].SolveBatch(ctx, req)
		if err == nil {
			return resp, ep, nil
		}
		lastErr = err
		if ctx.Err() != nil || !retriable(err) {
			return nil, ep, err
		}
	}
	return nil, "", lastErr
}

// SolveOperator solves by reference against the operator's rendezvous
// owner, registering on that endpoint first if this process hasn't yet
// (serve.Client caches acknowledgements per endpoint). Failover walks
// the rank like Solve; each endpoint's client re-registers as needed.
func (m *MultiClient) SolveOperator(ctx context.Context, op *serve.PreparedOperator, req serve.SolveRequest) (*serve.SolveResponse, string, error) {
	order := m.endpoints
	if len(m.endpoints) > 1 {
		order = Rank(m.endpoints, op.Fingerprint())
	}
	var lastErr error
	for _, ep := range order {
		resp, err := m.clients[ep].SolveOperator(ctx, op, req)
		if err == nil {
			return resp, ep, nil
		}
		lastErr = err
		if ctx.Err() != nil || !retriable(err) {
			return nil, ep, err
		}
	}
	return nil, "", lastErr
}

// SolveBatchOperator is SolveOperator's multi-RHS counterpart.
func (m *MultiClient) SolveBatchOperator(ctx context.Context, op *serve.PreparedOperator, req serve.BatchSolveRequest) (*serve.BatchSolveResponse, string, error) {
	order := m.endpoints
	if len(m.endpoints) > 1 {
		order = Rank(m.endpoints, op.Fingerprint())
	}
	var lastErr error
	for _, ep := range order {
		resp, err := m.clients[ep].SolveBatchOperator(ctx, op, req)
		if err == nil {
			return resp, ep, nil
		}
		lastErr = err
		if ctx.Err() != nil || !retriable(err) {
			return nil, ep, err
		}
	}
	return nil, "", lastErr
}
