package federation

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"analogacc/internal/core"
	"analogacc/internal/la"
	"analogacc/internal/serve"
)

// TestFederationRegisterOnceSolveByRefAnywhere is the cross-node
// register-then-solve contract: an operator registered through any entry
// node lands on its rendezvous owner, and a later by-reference solve
// entering through a *different* node routes on the fingerprint alone —
// no matrix bytes on the wire — and answers bit-identically to the
// by-value solve.
func TestFederationRegisterOnceSolveByRefAnywhere(t *testing.T) {
	nodes := newCluster(t, 3, testPool(), false)
	ctx := context.Background()
	req := OperatorRequest(5, 8, 1e-8)
	owner := ownerIndex(t, nodes, req)
	entry1 := (owner + 1) % 3
	entry2 := (owner + 2) % 3

	// By-value baseline through one entry node.
	byVal, err := nodes[entry1].client.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	// Register through a non-owner entry: the router forwards the upload
	// to the affinity owner, and only the owner becomes resident.
	info, err := nodes[entry1].client.RegisterOperator(ctx, serve.OperatorRequest{N: req.N, A: req.A})
	if err != nil {
		t.Fatal(err)
	}
	if info.ServedBy != fmt.Sprintf("node%d", owner) {
		t.Fatalf("registration landed on %q, want owner node%d", info.ServedBy, owner)
	}
	for i, nd := range nodes {
		want := 0
		if i == owner {
			want = 1
		}
		if got := nd.server.Snapshot().RegistryOps; got != want {
			t.Fatalf("node%d holds %d operators, want %d (registration must route, not broadcast)", i, got, want)
		}
	}

	// Solve by reference through the other entry node. The request body
	// carries no matrix, yet it still reaches the owner by fingerprint.
	refReq := serve.SolveRequest{Fingerprint: info.Fingerprint, B: req.B, Tol: req.Tol}
	raw, err := json.Marshal(refReq)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"A"`) {
		t.Fatal("by-ref request still carries matrix entries")
	}
	byRef, err := nodes[entry2].client.Solve(ctx, refReq)
	if err != nil {
		t.Fatal(err)
	}
	if byRef.ServedBy != fmt.Sprintf("node%d", owner) {
		t.Fatalf("by-ref solve served by %q, want owner node%d", byRef.ServedBy, owner)
	}
	if byRef.Affinity != RouteHit {
		t.Fatalf("by-ref solve affinity %q, want %q", byRef.Affinity, RouteHit)
	}
	for i := range byVal.U {
		if byRef.U[i] != byVal.U[i] {
			t.Fatalf("u[%d]: by-ref %v, by-value %v — cross-node by-ref must be bit-identical", i, byRef.U[i], byVal.U[i])
		}
	}
	// The owner's registry saw the hit.
	if snap := nodes[owner].server.Snapshot(); snap.RegistryHits < 1 {
		t.Fatalf("owner registry hits = %d after a by-ref solve", snap.RegistryHits)
	}

	// A by-ref solve against an unknown fingerprint surfaces the stable
	// unknown_operator code through the router (non-retriable — only the
	// client can fix it by registering).
	_, err = nodes[entry2].client.Solve(ctx, serve.SolveRequest{Fingerprint: "deadbeef", B: req.B})
	if !serve.IsUnknownOperator(err) {
		t.Fatalf("unknown fingerprint answered %v, want unknown_operator", err)
	}
}

// TestFederationSolveOperatorClientPath drives the MultiClient
// register-and-retry wrapper against a cluster: one registration,
// repeated by-ref solves, all landing on the operator's owner.
func TestFederationSolveOperatorClientPath(t *testing.T) {
	nodes := newCluster(t, 3, testPool(), false)
	ctx := context.Background()
	req := OperatorRequest(7, 8, 1e-8)
	a, b, err := req.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}

	mc, err := NewMultiClient(memberURLs(nodes), nil)
	if err != nil {
		t.Fatal(err)
	}
	baseline, _, err := mc.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	op := serve.PrepareOperator(a)
	solveReq := serve.SolveRequest{B: []float64(b), Tol: req.Tol}
	for i := 0; i < 3; i++ {
		resp, _, err := mc.SolveOperator(ctx, op, solveReq)
		if err != nil {
			t.Fatalf("solve %d: %v", i, err)
		}
		for k := range baseline.U {
			if resp.U[k] != baseline.U[k] {
				t.Fatalf("solve %d diverged at u[%d]", i, k)
			}
		}
	}
	// Exactly one node became resident, and repeat solves hit it.
	resident := 0
	for _, nd := range nodes {
		if nd.server.Snapshot().RegistryOps > 0 {
			resident++
		}
	}
	if resident != 1 {
		t.Fatalf("%d nodes hold the operator, want exactly 1", resident)
	}
}

// TestPeerBlockByReference exercises the scatter-gather wire format
// directly: a full block send implicitly registers the operator, a
// by-reference sweep answers identically, and an unknown fingerprint
// bounces with unknown_operator so the provider can fall back to a full
// resend.
func TestPeerBlockByReference(t *testing.T) {
	s, err := serve.New(serve.Config{Pool: testPool(), JobWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := serve.NewClient(ts.URL)
	ctx := context.Background()

	full := serve.BlockSolveRequest{
		N: 4,
		A: []serve.Entry{
			{Row: 0, Col: 0, Val: 4}, {Row: 0, Col: 1, Val: -1},
			{Row: 1, Col: 0, Val: -1}, {Row: 1, Col: 1, Val: 4}, {Row: 1, Col: 2, Val: -1},
			{Row: 2, Col: 1, Val: -1}, {Row: 2, Col: 2, Val: 4}, {Row: 2, Col: 3, Val: -1},
			{Row: 3, Col: 2, Val: -1}, {Row: 3, Col: 3, Val: 4},
		},
		Items: []serve.BlockWireItem{{RHS: []float64{1, 2, 3, 4}}},
		Opt:   serve.BlockOptions{Tolerance: 1e-9},
	}
	// Unknown fingerprint first: stable 404 so callers can resend.
	_, err = cl.SolveBlock(ctx, serve.BlockSolveRequest{
		N: 4, Fingerprint: "deadbeef", Items: full.Items, Opt: full.Opt,
	})
	if !serve.IsUnknownOperator(err) {
		t.Fatalf("unknown block fingerprint answered %v, want unknown_operator", err)
	}
	// Both forms at once is a 400.
	both := full
	both.Fingerprint = "deadbeef"
	_, err = cl.SolveBlock(ctx, both)
	var re *serve.RemoteError
	if !errors.As(err, &re) || re.Code != serve.CodeBadRequest {
		t.Fatalf("both-forms block answered %v, want bad_request", err)
	}

	fullResp, err := cl.SolveBlock(ctx, full)
	if err != nil {
		t.Fatal(err)
	}
	if !fullResp.Registered {
		t.Fatal("full block send did not echo Registered=true — clients would never switch to by-reference")
	}
	// The full send registered the block; solve it by reference now.
	a, _, err := (&serve.SolveRequest{N: full.N, A: full.A, B: full.Items[0].RHS}).BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	byRef := serve.BlockSolveRequest{
		N:           4,
		Fingerprint: serve.FormatFingerprint(la.Fingerprint(a)),
		Items:       full.Items,
		Opt:         full.Opt,
	}
	refResp, err := cl.SolveBlock(ctx, byRef)
	if err != nil {
		t.Fatalf("by-ref block after implicit registration: %v", err)
	}
	if !refResp.Registered {
		t.Fatal("by-ref block hit did not echo Registered=true")
	}
	for i := range fullResp.Results[0].U {
		if refResp.Results[0].U[i] != fullResp.Results[0].U[i] {
			t.Fatalf("u[%d]: by-ref block %v, full block %v", i, refResp.Results[0].U[i], fullResp.Results[0].U[i])
		}
	}
}

// TestPeerBlockOversizedStaysByValue pins down the Registered echo: a
// peer whose registry byte cap cannot admit the block answers
// Registered=false, and the remote session must keep sending the block
// by value — exactly one wire call per sweep, never the 404-then-resend
// double round trip that trusting the send's success would buy.
func TestPeerBlockOversizedStaysByValue(t *testing.T) {
	s, err := serve.New(serve.Config{Pool: testPool(), JobWorkers: -1, RegistryMaxBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var blockCalls atomic.Int64
	inner := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/peer/block") {
			blockCalls.Add(1)
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()
	ctx := context.Background()

	a, _, err := (&serve.SolveRequest{
		N: 4,
		A: []serve.Entry{
			{Row: 0, Col: 0, Val: 4}, {Row: 0, Col: 1, Val: -1},
			{Row: 1, Col: 0, Val: -1}, {Row: 1, Col: 1, Val: 4}, {Row: 1, Col: 2, Val: -1},
			{Row: 2, Col: 1, Val: -1}, {Row: 2, Col: 2, Val: 4}, {Row: 2, Col: 3, Val: -1},
			{Row: 3, Col: 2, Val: -1}, {Row: 3, Col: 3, Val: 4},
		},
		B: []float64{1, 2, 3, 4},
	}).BuildSystem()
	if err != nil {
		t.Fatal(err)
	}

	w := &remoteWorker{addr: "peer", client: serve.NewClient(ts.URL)}
	sess, err := w.OpenBlock(a)
	if err != nil {
		t.Fatal(err)
	}
	items := []core.BatchItem{{RHS: la.Vector{1, 2, 3, 4}}}
	opt := core.SolveOptions{Tolerance: 1e-9}
	us1, _, _, err := sess.SolveBatchRefinedItems(ctx, items, opt)
	if err != nil {
		t.Fatalf("sweep 1: %v", err)
	}
	if sess.(*remoteSession).registered {
		t.Fatal("session armed by-reference although the peer could not register the block")
	}
	us2, _, _, err := sess.SolveBatchRefinedItems(ctx, items, opt)
	if err != nil {
		t.Fatalf("sweep 2: %v", err)
	}
	for i := range us1[0] {
		if us2[0][i] != us1[0][i] {
			t.Fatalf("u[%d]: sweep 2 %v, sweep 1 %v", i, us2[0][i], us1[0][i])
		}
	}
	if got := blockCalls.Load(); got != 2 {
		t.Fatalf("two sweeps cost %d block calls, want exactly 2 (no unknown_operator retry round trips)", got)
	}
	if got := s.Snapshot().RegistryOps; got != 0 {
		t.Fatalf("oversized block left %d operators resident", got)
	}
}
