package federation

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"analogacc/internal/la"
	"analogacc/internal/serve"
)

// swapHandler lets the httptest listener start before the router exists
// (the router needs the listener's URL as its identity).
type swapHandler struct {
	mu sync.RWMutex
	h  http.Handler
}

func (s *swapHandler) Set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	h := s.h
	s.mu.RUnlock()
	h.ServeHTTP(w, r)
}

type clusterNode struct {
	server *serve.Server
	router *Router
	ts     *httptest.Server
	client *serve.Client
}

// newCluster starts n federated nodes with identical tiny pools. Every
// node's chips are built from the same seeds, so block results are
// bit-identical across nodes. Membership is refreshed synchronously —
// call pollAll after changing the cluster.
func newCluster(t *testing.T, n int, pool serve.PoolConfig, disabled bool) []*clusterNode {
	t.Helper()
	nodes := make([]*clusterNode, n)
	handlers := make([]*swapHandler, n)
	urls := make([]string, n)
	for i := range nodes {
		s, err := serve.New(serve.Config{Pool: pool, NodeName: fmt.Sprintf("node%d", i), JobWorkers: -1})
		if err != nil {
			t.Fatal(err)
		}
		handlers[i] = &swapHandler{h: s.Handler()}
		ts := httptest.NewServer(handlers[i])
		nodes[i] = &clusterNode{server: s, ts: ts, client: serve.NewClient(ts.URL)}
		urls[i] = ts.URL
	}
	for i, nd := range nodes {
		peers := make([]string, 0, n-1)
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		nd.router = NewRouter(Config{
			Self:     urls[i],
			Peers:    peers,
			Disabled: disabled,
			Seed:     1,
		}, nd.server)
		handlers[i].Set(nd.router.Handler())
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.ts.Close()
			nd.server.Close()
		}
	})
	pollAll(nodes)
	return nodes
}

func pollAll(nodes []*clusterNode) {
	for _, nd := range nodes {
		if nd.router != nil {
			nd.router.PollOnce(context.Background())
		}
	}
}

func testPool() serve.PoolConfig {
	return serve.PoolConfig{ChipsPerClass: 2, WarmSizes: []int{2}, MinClass: 2, MaxDim: 32}
}

// ownerIndex finds which node the fingerprint's affinity owner is.
func ownerIndex(t *testing.T, nodes []*clusterNode, req serve.SolveRequest) int {
	t.Helper()
	a, _, err := req.BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	owner := Owner(memberURLs(nodes), la.Fingerprint(a))
	for i, nd := range nodes {
		if nd.ts.URL == owner {
			return i
		}
	}
	t.Fatalf("owner %q is not a cluster node", owner)
	return -1
}

func memberURLs(nodes []*clusterNode) []string {
	out := make([]string, len(nodes))
	for i, nd := range nodes {
		out[i] = nd.ts.URL
	}
	return out
}

// The tentpole behavior: the same matrix entering through two different
// nodes is served by one node — the rendezvous owner — and the second
// solve is a session-cache warm hit on that node.
func TestFederationCrossNodeWarmHit(t *testing.T) {
	nodes := newCluster(t, 3, testPool(), false)
	ctx := context.Background()
	req := OperatorRequest(5, 8, 1e-8)
	owner := ownerIndex(t, nodes, req)

	entry1 := (owner + 1) % 3
	entry2 := (owner + 2) % 3
	resp1, err := nodes[entry1].client.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	wantNode := fmt.Sprintf("node%d", owner)
	if resp1.ServedBy != wantNode {
		t.Fatalf("first solve served by %q, want owner %q", resp1.ServedBy, wantNode)
	}
	if resp1.Affinity != RouteHit {
		t.Fatalf("first solve affinity %q, want %q (entry %d is not the owner)", resp1.Affinity, RouteHit, entry1)
	}
	hitsBefore := nodes[owner].server.Pool().CacheHits()

	resp2, err := nodes[entry2].client.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.ServedBy != wantNode {
		t.Fatalf("second solve served by %q, want owner %q", resp2.ServedBy, wantNode)
	}
	if resp2.Affinity != RouteHit {
		t.Fatalf("second solve affinity %q, want %q", resp2.Affinity, RouteHit)
	}
	if hits := nodes[owner].server.Pool().CacheHits(); hits != hitsBefore+1 {
		t.Fatalf("owner cache hits %d → %d, want a warm adoption on the second solve", hitsBefore, hits)
	}
	// The entry node served nothing itself.
	for _, i := range []int{entry1, entry2} {
		if hits := nodes[i].server.Pool().CacheHits() + nodes[i].server.Pool().CacheMisses(); hits != 0 {
			t.Fatalf("entry node %d pool saw traffic (%d checkouts); all solves belong on the owner", i, hits)
		}
	}

	// Entering through the owner itself labels local.
	resp3, err := nodes[owner].client.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp3.Affinity != RouteLocal || resp3.ServedBy != wantNode {
		t.Fatalf("owner-entry solve: affinity %q served_by %q, want local/%s", resp3.Affinity, resp3.ServedBy, wantNode)
	}
}

// With affinity disabled, routing is load-blind random: distinct
// operators spread over several nodes and responses are labelled
// random. (The measurement baseline for the affinity win.)
func TestFederationDisabledRoutesRandomly(t *testing.T) {
	nodes := newCluster(t, 3, testPool(), true)
	ctx := context.Background()
	served := map[string]bool{}
	for op := 0; op < 12; op++ {
		resp, err := nodes[0].client.Solve(ctx, OperatorRequest(op, 8, 1e-8))
		if err != nil {
			t.Fatal(err)
		}
		if resp.Affinity != RouteRandom {
			t.Fatalf("op %d affinity %q, want %q", op, resp.Affinity, RouteRandom)
		}
		served[resp.ServedBy] = true
	}
	if len(served) < 2 {
		t.Fatalf("12 random-routed solves all landed on %v; want spread", served)
	}
}

// Health-gated failover: kill the affinity owner and the same request
// re-routes to the next-ranked node, labelled fallback.
func TestFederationFailoverOnDeadOwner(t *testing.T) {
	nodes := newCluster(t, 3, testPool(), false)
	ctx := context.Background()
	req := OperatorRequest(9, 8, 1e-8)
	owner := ownerIndex(t, nodes, req)
	entry := (owner + 1) % 3

	if _, err := nodes[entry].client.Solve(ctx, req); err != nil {
		t.Fatal(err)
	}

	// Kill the owner (listener down, like a SIGKILL'd process).
	nodes[owner].ts.Close()

	// The next solve's forward fails, marks the owner unhealthy, and
	// falls back in the same request.
	resp, err := nodes[entry].client.Solve(ctx, req)
	if err != nil {
		t.Fatalf("solve after owner death: %v", err)
	}
	if resp.Affinity != RouteFallback {
		t.Fatalf("affinity %q after owner death, want %q", resp.Affinity, RouteFallback)
	}
	if resp.ServedBy == fmt.Sprintf("node%d", owner) {
		t.Fatalf("served by the dead owner %q", resp.ServedBy)
	}
	_, _, fallback, _, ferrs := nodes[entry].router.Metrics().Counts()
	if fallback == 0 || ferrs == 0 {
		t.Fatalf("fallback=%d forwardErrors=%d, want both > 0", fallback, ferrs)
	}

	// After a poll the owner is gone from membership entirely and the
	// re-route is the new steady state.
	pollAll([]*clusterNode{nodes[entry]})
	resp2, err := nodes[entry].client.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.ServedBy == fmt.Sprintf("node%d", owner) {
		t.Fatalf("served by the dead owner after re-poll")
	}
}

// A draining node reports unready and stops being a routing target,
// while staying alive for liveness probes.
func TestMembershipGatesOnDrainAndSaturation(t *testing.T) {
	// Hand-rolled peer: readyz 200, stats with a saturated queue.
	depth := 60
	draining := false
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		if draining {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/peer/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"node":"fake","queue_depth":%d,"queue_bound":64,"draining":%v}`, depth, draining)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	m := NewMembership("self", []string{ts.URL}, 50*time.Millisecond, 0.75)
	ctx := context.Background()

	m.PollOnce(ctx)
	if m.Available(ts.URL) {
		t.Fatal("peer at 60/64 queue depth counted available (saturation gate missed)")
	}
	members := m.Members()
	if len(members) != 2 {
		t.Fatalf("saturated peer left membership: %v (should stay a member, just ineligible)", members)
	}

	depth = 3
	m.PollOnce(ctx)
	if !m.Available(ts.URL) {
		t.Fatal("healthy low-load peer not available")
	}

	draining = true
	m.PollOnce(ctx)
	if m.Available(ts.URL) {
		t.Fatal("draining peer counted available")
	}

	m.MarkUnhealthy(ts.URL)
	if got := m.Members(); len(got) != 1 || got[0] != "self" {
		t.Fatalf("marked-unhealthy peer still a member: %v", got)
	}
}

// The server's readiness split: /healthz stays green through a drain,
// /readyz flips 503.
func TestReadyzReflectsDrain(t *testing.T) {
	s, err := serve.New(serve.Config{Pool: testPool(), JobWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := serve.NewClient(ts.URL)
	ctx := context.Background()

	if err := cl.Readyz(ctx); err != nil {
		t.Fatalf("fresh server unready: %v", err)
	}
	s.SetDraining(true)
	if err := cl.Readyz(ctx); err == nil {
		t.Fatal("draining server reported ready")
	}
	if err := cl.Healthz(ctx); err != nil {
		t.Fatalf("draining server failed liveness: %v", err)
	}
}

// The peer block endpoint is a wire BlockSession: repeated calls for the
// same matrix adopt the resident programming (configs drop to zero).
func TestPeerBlockEndpointResidency(t *testing.T) {
	s, err := serve.New(serve.Config{Pool: testPool(), JobWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cl := serve.NewClient(ts.URL)
	ctx := context.Background()

	req := serve.BlockSolveRequest{
		N: 4,
		A: []serve.Entry{
			{Row: 0, Col: 0, Val: 4}, {Row: 0, Col: 1, Val: -1},
			{Row: 1, Col: 0, Val: -1}, {Row: 1, Col: 1, Val: 4}, {Row: 1, Col: 2, Val: -1},
			{Row: 2, Col: 1, Val: -1}, {Row: 2, Col: 2, Val: 4}, {Row: 2, Col: 3, Val: -1},
			{Row: 3, Col: 2, Val: -1}, {Row: 3, Col: 3, Val: 4},
		},
		Items: []serve.BlockWireItem{
			{RHS: []float64{1, 2, 3, 4}},
			{RHS: []float64{4, 3, 2, 1}},
		},
		Opt: serve.BlockOptions{Tolerance: 1e-9},
	}
	resp1, err := cl.SolveBlock(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp1.Results) != 2 {
		t.Fatalf("results: %d", len(resp1.Results))
	}
	if resp1.Configs == 0 {
		t.Fatal("first block solve reported zero matrix configurations")
	}
	// Verify against the digital residual.
	a, _, err := (&serve.SolveRequest{N: req.N, A: req.A, B: req.Items[0].RHS}).BuildSystem()
	if err != nil {
		t.Fatal(err)
	}
	for k, item := range req.Items {
		r := la.RelativeResidual(a, la.Vector(resp1.Results[k].U), la.Vector(item.RHS))
		if r > 1e-8 {
			t.Fatalf("item %d residual %v", k, r)
		}
	}

	resp2, err := cl.SolveBlock(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Configs != 0 {
		t.Fatalf("second block solve reprogrammed the matrix (%d configs); the session cache should adopt it", resp2.Configs)
	}
}

// Scatter-gather: an oversized solve on a 1-chip node borrows peer
// chips, and its answer is bit-identical to the same solve on a
// standalone node (the engine is worker-count independent and every
// node's chips share seeds).
func TestFederationScatterGatherBitIdentical(t *testing.T) {
	pool := serve.PoolConfig{ChipsPerClass: 1, WarmSizes: []int{2}, MinClass: 2, MaxDim: 16}
	req := serve.SolveRequest{N: 48, Tol: 1e-8}
	for i := 0; i < 48; i++ {
		req.A = append(req.A, serve.Entry{Row: i, Col: i, Val: 4})
		if i > 0 {
			req.A = append(req.A, serve.Entry{Row: i, Col: i - 1, Val: -1})
		}
		if i < 47 {
			req.A = append(req.A, serve.Entry{Row: i, Col: i + 1, Val: -1})
		}
		req.B = append(req.B, 1+float64(i%5))
	}

	// Baseline: standalone node, same pool shape, local decomposition.
	base, err := serve.New(serve.Config{Pool: pool, NodeName: "solo", JobWorkers: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	bts := httptest.NewServer(base.Handler())
	defer bts.Close()
	ctx := context.Background()
	baseResp, err := serve.NewClient(bts.URL).Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if baseResp.Decompose == nil {
		t.Fatal("baseline did not decompose")
	}

	// Federated: 3 nodes, each with the same 1-chip pool.
	nodes := newCluster(t, 3, pool, false)
	owner := ownerIndex(t, nodes, req)
	entry := (owner + 1) % 3
	fedResp, err := nodes[entry].client.Solve(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if fedResp.Decompose == nil {
		t.Fatal("federated solve did not decompose")
	}
	if fedResp.Decompose.Chips < 2 {
		t.Fatalf("federated solve used %d chips; want peers lending lanes", fedResp.Decompose.Chips)
	}
	var scattered int64
	for _, nd := range nodes {
		scattered += nd.router.Metrics().blockOut.Load()
	}
	if scattered == 0 {
		t.Fatal("no block batches were scattered to peers")
	}
	if len(fedResp.U) != len(baseResp.U) {
		t.Fatalf("length mismatch %d vs %d", len(fedResp.U), len(baseResp.U))
	}
	for i := range fedResp.U {
		if fedResp.U[i] != baseResp.U[i] {
			t.Fatalf("u[%d]: federated %v != standalone %v (bit-identity broken)", i, fedResp.U[i], baseResp.U[i])
		}
	}
}
