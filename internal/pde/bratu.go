package pde

import (
	"fmt"
	"math"

	"analogacc/internal/la"
)

// Bratu is the classic nonlinear elliptic boundary-value problem
// −∇²u = λ·e^u on the unit line/square with homogeneous Dirichlet
// boundaries: the workload for the paper's Section VI-F direction, where
// implicit nonlinear solvers need a linear-system solve (here analog-
// accelerated) inside every Newton iteration.
//
// Written as F(u) = A·u − λ·e^u = 0 with A the discrete −∇², the Jacobian
// is J(u) = A − λ·diag(e^u), which stays positive definite for λ below the
// fold point (λ* ≈ 3.51 in 1-D, ≈ 6.81 in 2-D), so the accelerator's
// gradient-flow solver applies.
type Bratu struct {
	GridDesc la.Grid
	Lambda   float64
	A        *la.CSR
}

// NewBratu discretizes the Bratu problem.
func NewBratu(dims, l int, lambda float64) (*Bratu, error) {
	if lambda < 0 {
		return nil, fmt.Errorf("pde: Bratu lambda %v must be non-negative", lambda)
	}
	g, err := la.NewGrid(dims, l)
	if err != nil {
		return nil, err
	}
	return &Bratu{GridDesc: g, Lambda: lambda, A: la.PoissonMatrix(g)}, nil
}

// Dim returns the number of unknowns.
func (p *Bratu) Dim() int { return p.A.Dim() }

// Eval computes dst = F(u) = A·u − λ·e^u.
func (p *Bratu) Eval(dst la.Vector, u la.Vector) {
	p.A.Apply(dst, u)
	for i := range dst {
		dst[i] -= p.Lambda * math.Exp(u[i])
	}
}

// Jacobian returns J(u) = A − λ·diag(e^u).
func (p *Bratu) Jacobian(u la.Vector) *la.CSR {
	var entries []la.COOEntry
	n := p.A.Dim()
	for i := 0; i < n; i++ {
		p.A.VisitRow(i, func(j int, v float64) {
			if j == i {
				v -= p.Lambda * math.Exp(u[i])
			}
			entries = append(entries, la.COOEntry{Row: i, Col: j, Val: v})
		})
	}
	return la.MustCSR(n, entries)
}
