package pde

import (
	"fmt"

	"analogacc/internal/la"
	"analogacc/internal/solvers"
)

// Geometric multigrid (Section IV-A): the overall PDE is converted to
// linear problems at several spatial resolutions; coarse levels are cheap
// to solve and accelerate the convergence of fine levels. "Because perfect
// convergence is not required, less stable, inaccurate, low precision
// techniques, such as analog acceleration, may also be used to support
// multigrid" — hence the pluggable CoarseSolver hook, which the examples
// and benchmarks connect to the analog accelerator.

// Smoother damps high-frequency error of A·x = b in place.
type Smoother func(a *la.CSR, b, x la.Vector, sweeps int)

// CoarseSolver solves the coarsest level's system (approximately is fine).
type CoarseSolver func(a *la.CSR, b la.Vector) (la.Vector, error)

// MGOptions configures a multigrid solver.
type MGOptions struct {
	// PreSmooth/PostSmooth are smoothing sweeps around each coarse-grid
	// correction (defaults 2 and 2).
	PreSmooth, PostSmooth int
	// CoarsestL stops coarsening at this many points per side (default 3).
	CoarsestL int
	// Tolerance is the stop test ‖b − A·x‖₂ ≤ Tolerance·‖b‖₂ (default 1e-8).
	Tolerance float64
	// MaxCycles bounds V-cycles (default 60).
	MaxCycles int
	// Smoother overrides damped Jacobi.
	Smoother Smoother
	// Coarse overrides the direct coarsest-level solve. Errors abort.
	Coarse CoarseSolver
}

func (o MGOptions) withDefaults() MGOptions {
	if o.PreSmooth <= 0 {
		o.PreSmooth = 2
	}
	if o.PostSmooth <= 0 {
		o.PostSmooth = 2
	}
	if o.CoarsestL <= 0 {
		o.CoarsestL = 3
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-8
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 60
	}
	if o.Smoother == nil {
		o.Smoother = DampedJacobi(2.0 / 3.0)
	}
	if o.Coarse == nil {
		o.Coarse = func(a *la.CSR, b la.Vector) (la.Vector, error) {
			return solvers.SolveCSRDirect(a, b)
		}
	}
	return o
}

// DampedJacobi returns the classical weighted-Jacobi smoother
// x ← x + ω·D⁻¹·(b − A·x).
func DampedJacobi(omega float64) Smoother {
	return func(a *la.CSR, b, x la.Vector, sweeps int) {
		n := a.Dim()
		diag := a.Diag()
		r := la.NewVector(n)
		for s := 0; s < sweeps; s++ {
			la.ResidualInto(r, a, x, b)
			for i := 0; i < n; i++ {
				x[i] += omega * r[i] / diag[i]
			}
		}
	}
}

// GaussSeidelSmoother smooths with forward Gauss-Seidel sweeps.
func GaussSeidelSmoother() Smoother {
	return func(a *la.CSR, b, x la.Vector, sweeps int) {
		n := a.Dim()
		for s := 0; s < sweeps; s++ {
			for i := 0; i < n; i++ {
				sum := b[i]
				var d float64
				a.VisitRow(i, func(j int, v float64) {
					if j == i {
						d = v
					} else {
						sum -= v * x[j]
					}
				})
				x[i] = sum / d
			}
		}
	}
}

// level is one resolution of the hierarchy.
type level struct {
	g la.Grid
	a *la.CSR
}

// Multigrid is a geometric V-cycle solver for Poisson-type problems on
// grids with L = 2^k − 1 interior points per side (1-D or 2-D).
type Multigrid struct {
	levels []level // 0 = finest
	opt    MGOptions
}

// MGStats reports a multigrid solve.
type MGStats struct {
	Cycles       int
	Levels       int
	Residual     float64 // final relative residual
	CoarseSolves int
}

// NewMultigrid builds the level hierarchy for a grid. The interior size
// per side must satisfy L = 2^k − 1 so levels nest.
func NewMultigrid(g la.Grid, opt MGOptions) (*Multigrid, error) {
	if g.Dims != 1 && g.Dims != 2 {
		return nil, fmt.Errorf("pde: multigrid supports 1-D and 2-D grids, got %d-D", g.Dims)
	}
	if !isPow2Minus1(g.L) {
		return nil, fmt.Errorf("pde: multigrid needs L = 2^k − 1 interior points, got %d", g.L)
	}
	opt = opt.withDefaults()
	mg := &Multigrid{opt: opt}
	for l := g.L; ; l = (l - 1) / 2 {
		lg, err := la.NewGrid(g.Dims, l)
		if err != nil {
			return nil, err
		}
		mg.levels = append(mg.levels, level{g: lg, a: la.PoissonMatrix(lg)})
		if l <= opt.CoarsestL {
			break
		}
	}
	return mg, nil
}

func isPow2Minus1(l int) bool {
	return l >= 1 && (l+1)&l == 0
}

// Levels returns the number of grid levels.
func (mg *Multigrid) Levels() int { return len(mg.levels) }

// Solve runs V-cycles from a zero initial guess until the relative
// residual meets the tolerance. See also SolveW and SolveFMG.
func (mg *Multigrid) Solve(b la.Vector) (la.Vector, MGStats, error) {
	return mg.solveCycles(b, 1)
}

// restrict transfers a fine-grid vector to the coarse grid by full
// weighting. Coarse interior point i sits at fine index 2i+1.
func restrict(fine, coarse la.Grid, r la.Vector) la.Vector {
	rc := la.NewVector(coarse.N())
	get := func(x, y int) float64 {
		if x < 0 || y < 0 || x >= fine.L || y >= fine.L {
			return 0
		}
		return r[fine.Index(x, y, 0)]
	}
	switch fine.Dims {
	case 1:
		for i := 0; i < coarse.L; i++ {
			f := 2*i + 1
			rc[i] = 0.25 * (get(f-1, 0) + 2*get(f, 0) + get(f+1, 0))
		}
	default: // 2-D: 9-point full weighting
		for cy := 0; cy < coarse.L; cy++ {
			for cx := 0; cx < coarse.L; cx++ {
				fx, fy := 2*cx+1, 2*cy+1
				sum := 4*get(fx, fy) +
					2*(get(fx-1, fy)+get(fx+1, fy)+get(fx, fy-1)+get(fx, fy+1)) +
					get(fx-1, fy-1) + get(fx+1, fy-1) + get(fx-1, fy+1) + get(fx+1, fy+1)
				rc[coarse.Index(cx, cy, 0)] = sum / 16
			}
		}
	}
	return rc
}

// prolong interpolates a coarse-grid vector to the fine grid (linear /
// bilinear), the transpose-like partner of restrict.
func prolong(coarse, fine la.Grid, e la.Vector) la.Vector {
	ef := la.NewVector(fine.N())
	get := func(x, y int) float64 {
		if x < 0 || y < 0 || x >= coarse.L || y >= coarse.L {
			return 0
		}
		return e[coarse.Index(x, y, 0)]
	}
	switch fine.Dims {
	case 1:
		for f := 0; f < fine.L; f++ {
			if f%2 == 1 {
				ef[f] = get((f-1)/2, 0)
			} else {
				ef[f] = 0.5 * (get(f/2-1, 0) + get(f/2, 0))
			}
		}
	default:
		for fy := 0; fy < fine.L; fy++ {
			for fx := 0; fx < fine.L; fx++ {
				// Coarse coordinates surrounding the fine point.
				cxLo, cyLo := (fx-1)/2, (fy-1)/2
				var v float64
				switch {
				case fx%2 == 1 && fy%2 == 1:
					v = get(cxLo, cyLo)
				case fx%2 == 0 && fy%2 == 1:
					v = 0.5 * (get(fx/2-1, cyLo) + get(fx/2, cyLo))
				case fx%2 == 1 && fy%2 == 0:
					v = 0.5 * (get(cxLo, fy/2-1) + get(cxLo, fy/2))
				default:
					v = 0.25 * (get(fx/2-1, fy/2-1) + get(fx/2, fy/2-1) +
						get(fx/2-1, fy/2) + get(fx/2, fy/2))
				}
				ef[fine.Index(fx, fy, 0)] = v
			}
		}
	}
	return ef
}
