package pde

import (
	"math"
	"testing"

	"analogacc/internal/la"
	"analogacc/internal/solvers"
)

func TestPoissonManufactured(t *testing.T) {
	for _, dims := range []int{1, 2, 3} {
		p, err := Poisson(dims, 6)
		if err != nil {
			t.Fatal(err)
		}
		if p.Exact == nil || p.A.Dim() != p.Grid.N() {
			t.Fatalf("dims=%d malformed problem", dims)
		}
		// The manufactured exact solution solves the discrete system by
		// construction.
		if r := p.Residual(p.Exact); r > 1e-9 {
			t.Fatalf("dims=%d residual at exact %v", dims, r)
		}
		if e := p.L2Error(p.Exact); e != 0 {
			t.Fatalf("dims=%d self error %v", dims, e)
		}
	}
	if _, err := Poisson(4, 4); err == nil {
		t.Fatal("dims=4 accepted")
	}
}

func TestFigure7ProblemSetup(t *testing.T) {
	p, err := Figure7Problem(8)
	if err != nil {
		t.Fatal(err)
	}
	if p.Grid.N() != 512 {
		t.Fatalf("N=%d", p.Grid.N())
	}
	// Only nodes on the x=0 face carry boundary load.
	h := p.Grid.H()
	inv := 1 / (h * h)
	for i := 0; i < p.Grid.N(); i++ {
		xi, _, _ := p.Grid.Coords(i)
		want := 0.0
		if xi == 0 {
			want = inv
		}
		if p.B[i] != want {
			t.Fatalf("b[%d]=%v want %v", i, p.B[i], want)
		}
	}
	// Default size is 16³ = 4096.
	big, err := Figure7Problem(0)
	if err != nil {
		t.Fatal(err)
	}
	if big.Grid.N() != 4096 {
		t.Fatalf("default N=%d want 4096", big.Grid.N())
	}
	// Sanity: the solution is positive and bounded by the boundary value.
	u, err := solvers.SolveCSRDirect(p.A, p.B)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range u {
		if v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("u[%d]=%v outside [0,1]", i, v)
		}
	}
}

func TestStripDecomposition(t *testing.T) {
	g, _ := la.NewGrid(2, 4)
	blocks := StripDecomposition(g)
	if len(blocks) != 4 {
		t.Fatalf("%d strips", len(blocks))
	}
	if blocks[1][0] != 4 || blocks[1][3] != 7 {
		t.Fatalf("strip 1 = %v", blocks[1])
	}
	g1, _ := la.NewGrid(1, 4)
	if StripDecomposition(g1) != nil {
		t.Fatal("1-D decomposition should be nil")
	}
}

func TestIsPow2Minus1(t *testing.T) {
	yes := []int{1, 3, 7, 15, 31, 63, 127}
	no := []int{0, 2, 4, 5, 6, 8, 16, 100}
	for _, v := range yes {
		if !isPow2Minus1(v) {
			t.Errorf("%d should qualify", v)
		}
	}
	for _, v := range no {
		if isPow2Minus1(v) {
			t.Errorf("%d should not qualify", v)
		}
	}
}

func TestMultigridSolves1D(t *testing.T) {
	p, _ := Poisson(1, 63)
	mg, err := NewMultigrid(p.Grid, MGOptions{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	u, stats, err := mg.Solve(p.B)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(p.Exact, 1e-7) {
		t.Fatalf("error %v", p.L2Error(u))
	}
	if stats.Levels < 4 {
		t.Fatalf("levels=%d", stats.Levels)
	}
	// Textbook multigrid: convergence independent of grid size, a few
	// cycles for 1e-10.
	if stats.Cycles > 15 {
		t.Fatalf("cycles=%d", stats.Cycles)
	}
}

func TestMultigridSolves2D(t *testing.T) {
	p, _ := Poisson(2, 31)
	mg, err := NewMultigrid(p.Grid, MGOptions{Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	u, stats, err := mg.Solve(p.B)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(p.Exact, 1e-6) {
		t.Fatalf("error %v", p.L2Error(u))
	}
	if stats.Cycles > 20 {
		t.Fatalf("cycles=%d", stats.Cycles)
	}
	if stats.CoarseSolves != stats.Cycles {
		t.Fatalf("coarse solves %d != cycles %d (one per V-cycle)", stats.CoarseSolves, stats.Cycles)
	}
}

func TestMultigridGridSizeIndependentCycles(t *testing.T) {
	// The multigrid selling point: cycle count is ~constant in L.
	var cycles []int
	for _, l := range []int{15, 31, 63} {
		p, _ := Poisson(2, l)
		mg, err := NewMultigrid(p.Grid, MGOptions{Tolerance: 1e-8})
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := mg.Solve(p.B)
		if err != nil {
			t.Fatal(err)
		}
		cycles = append(cycles, stats.Cycles)
	}
	if cycles[2] > cycles[0]*2+2 {
		t.Fatalf("cycles grew with grid size: %v", cycles)
	}
}

func TestMultigridApproximateCoarseSolver(t *testing.T) {
	// The Section IV-A claim: an imprecise coarse solver (like one analog
	// run) still converges overall, because the fine-level iteration
	// corrects it. Simulate 8-bit-grade coarse solves by quantizing.
	p, _ := Poisson(2, 31)
	coarse := func(a *la.CSR, b la.Vector) (la.Vector, error) {
		u, err := solvers.SolveCSRDirect(a, b)
		if err != nil {
			return nil, err
		}
		peak := u.NormInf()
		if peak == 0 {
			return u, nil
		}
		for i := range u {
			// Round to 8-bit resolution of the solve's own full scale.
			u[i] = math.Round(u[i]/peak*127) / 127 * peak
		}
		return u, nil
	}
	mg, err := NewMultigrid(p.Grid, MGOptions{Tolerance: 1e-8, Coarse: coarse})
	if err != nil {
		t.Fatal(err)
	}
	u, stats, err := mg.Solve(p.B)
	if err != nil {
		t.Fatalf("%v (stats %+v)", err, stats)
	}
	if !u.Equal(p.Exact, 1e-5) {
		t.Fatalf("error %v with approximate coarse solver", p.L2Error(u))
	}
}

func TestMultigridGaussSeidelSmoother(t *testing.T) {
	p, _ := Poisson(2, 15)
	mg, err := NewMultigrid(p.Grid, MGOptions{Tolerance: 1e-9, Smoother: GaussSeidelSmoother()})
	if err != nil {
		t.Fatal(err)
	}
	u, stats, err := mg.Solve(p.B)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(p.Exact, 1e-6) {
		t.Fatalf("GS smoother error %v", p.L2Error(u))
	}
	if stats.Cycles > 12 {
		t.Fatalf("GS cycles=%d", stats.Cycles)
	}
}

func TestMultigridValidation(t *testing.T) {
	g, _ := la.NewGrid(2, 10) // not 2^k-1
	if _, err := NewMultigrid(g, MGOptions{}); err == nil {
		t.Fatal("L=10 accepted")
	}
	g3, _ := la.NewGrid(3, 7)
	if _, err := NewMultigrid(g3, MGOptions{}); err == nil {
		t.Fatal("3-D accepted")
	}
	gOK, _ := la.NewGrid(1, 7)
	mg, err := NewMultigrid(gOK, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mg.Solve(la.NewVector(3)); err == nil {
		t.Fatal("wrong-length b accepted")
	}
	// Zero b: trivial zero solution.
	u, _, err := mg.Solve(la.NewVector(7))
	if err != nil || u.Norm2() != 0 {
		t.Fatalf("zero-b solve: %v %v", u, err)
	}
}

func TestRestrictProlongPartnership(t *testing.T) {
	// Prolongation of a constant is (interior) constant; restriction of
	// a constant stays near-constant away from boundaries.
	fine, _ := la.NewGrid(2, 7)
	coarse, _ := la.NewGrid(2, 3)
	ec := la.Constant(coarse.N(), 1)
	ef := prolong(coarse, fine, ec)
	// Center fine point coincides with a coarse point.
	if ef[fine.Index(3, 3, 0)] != 1 {
		t.Fatalf("coarse-coincident point %v", ef[fine.Index(3, 3, 0)])
	}
	// Odd-odd points copy; even points interpolate to 1 in the interior.
	if ef[fine.Index(3, 2, 0)] != 1 || ef[fine.Index(2, 3, 0)] != 1 {
		t.Fatalf("interpolated interior points %v %v", ef[fine.Index(3, 2, 0)], ef[fine.Index(2, 3, 0)])
	}
	rf := la.Constant(fine.N(), 1)
	rc := restrict(fine, coarse, rf)
	if math.Abs(rc[coarse.Index(1, 1, 0)]-1) > 1e-12 {
		t.Fatalf("interior restriction %v", rc[coarse.Index(1, 1, 0)])
	}
}

func TestBratuNewtonDigital(t *testing.T) {
	// Solve 1-D Bratu with plain digital Newton as a reference; validates
	// Eval/Jacobian consistency (finite-difference check) and physical
	// shape (positive, symmetric).
	p, err := NewBratu(1, 15, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	n := p.Dim()
	u := la.NewVector(n)
	for it := 0; it < 30; it++ {
		f := la.NewVector(n)
		p.Eval(f, u)
		if f.NormInf() < 1e-11 {
			break
		}
		step, err := solvers.SolveCSRDirect(p.Jacobian(u), f.Scaled(-1))
		if err != nil {
			t.Fatal(err)
		}
		u.Add(step)
	}
	f := la.NewVector(n)
	p.Eval(f, u)
	if f.NormInf() > 1e-10 {
		t.Fatalf("digital Newton stalled at %v", f.NormInf())
	}
	// Shape: positive, symmetric about the midpoint.
	for i := 0; i < n; i++ {
		if u[i] <= 0 {
			t.Fatalf("u[%d]=%v not positive", i, u[i])
		}
		if math.Abs(u[i]-u[n-1-i]) > 1e-9 {
			t.Fatalf("asymmetric solution at %d", i)
		}
	}
	// Jacobian consistency: J(u)·v ≈ (F(u+εv) − F(u))/ε.
	v := la.NewVector(n)
	for i := range v {
		v[i] = math.Sin(float64(i))
	}
	eps := 1e-7
	uPert := u.Clone()
	uPert.AddScaled(eps, v)
	fPert := la.NewVector(n)
	p.Eval(fPert, uPert)
	fd := la.Sub2(fPert, f).Scaled(1 / eps)
	jv := la.NewVector(n)
	p.Jacobian(u).Apply(jv, v)
	if !fd.Equal(jv, 1e-4*math.Max(1, jv.NormInf())) {
		t.Fatal("Jacobian inconsistent with finite differences")
	}
}

func TestBratuValidation(t *testing.T) {
	if _, err := NewBratu(1, 5, -1); err == nil {
		t.Fatal("negative lambda accepted")
	}
	if _, err := NewBratu(5, 5, 1); err == nil {
		t.Fatal("bad dims accepted")
	}
}
