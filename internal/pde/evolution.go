package pde

import (
	"fmt"
	"math"

	"analogacc/internal/la"
)

// Time-dependent PDEs (the left branch of the paper's Figure 4 taxonomy):
// spatial discretization turns a parabolic or hyperbolic PDE into a system
// of ODEs, which explicit steppers — "e.g., RK4, analog" — integrate
// directly. On the accelerator this is native ODE mode: the heat equation
// runs as du/dt = −A·u + q, the wave equation as a 2N-state first-order
// system.

// HeatProblem is ∂u/∂t = ∇²u + q on the unit interval/square with
// homogeneous Dirichlet boundaries, discretized in space.
type HeatProblem struct {
	Grid la.Grid
	// M is the ODE system matrix (−A for the discrete Laplacian A).
	M *la.CSR
	// Q is the constant source term.
	Q la.Vector
	// U0 is the initial temperature field.
	U0 la.Vector
	// modes holds the eigen-decomposition of U0 for the exact solution
	// (available when the problem was built from eigenmodes).
	modes []heatMode
}

type heatMode struct {
	amp    float64
	lambda float64
	shape  la.Vector
}

// NewHeatEigenmodes builds a 1-D heat problem whose initial condition is a
// sum of Laplacian eigenmodes amp_k·sin(kπx), giving the closed-form
// solution u(t) = Σ amp_k·e^{−λ_k t}·sin(kπx) with
// λ_k = (4/h²)·sin²(kπh/2) — the discrete (not continuum) decay rates, so
// the comparison isolates the solver from discretization error.
func NewHeatEigenmodes(l int, amps map[int]float64) (*HeatProblem, error) {
	g, err := la.NewGrid(1, l)
	if err != nil {
		return nil, err
	}
	a := la.PoissonMatrix(g)
	h := g.H()
	p := &HeatProblem{
		Grid: g,
		M:    a.Scaled(-1),
		Q:    la.NewVector(g.N()),
		U0:   la.NewVector(g.N()),
	}
	for k, amp := range amps {
		if k < 1 || k > l {
			return nil, fmt.Errorf("pde: eigenmode %d outside 1..%d", k, l)
		}
		shape := la.NewVector(g.N())
		for i := 0; i < g.N(); i++ {
			shape[i] = math.Sin(float64(k) * math.Pi * float64(i+1) * h)
		}
		lambda := 4 / (h * h) * math.Pow(math.Sin(float64(k)*math.Pi*h/2), 2)
		p.modes = append(p.modes, heatMode{amp: amp, lambda: lambda, shape: shape})
		p.U0.AddScaled(amp, shape)
	}
	return p, nil
}

// Exact returns the closed-form field at time t (nil when the problem was
// not built from eigenmodes).
func (p *HeatProblem) Exact(t float64) la.Vector {
	if p.modes == nil {
		return nil
	}
	u := la.NewVector(p.Grid.N())
	for _, m := range p.modes {
		u.AddScaled(m.amp*math.Exp(-m.lambda*t), m.shape)
	}
	return u
}

// WaveProblem is ∂²u/∂t² = c²·∇²u as the first-order system
// d/dt (u, v) = (v, −c²·A·u): 2N states, energy-conserving.
type WaveProblem struct {
	Grid la.Grid
	// M is the 2N×2N first-order system matrix.
	M *la.CSR
	// U0 is the 2N-state initial condition (displacement then velocity).
	U0 la.Vector
	// mode bookkeeping for the closed form.
	k     int
	omega float64
	amp   float64
	shape la.Vector
}

// NewWaveEigenmode builds a 1-D wave problem vibrating in a single
// discrete eigenmode: u(x,t) = amp·cos(ω_k t)·sin(kπx) with
// ω_k = (2/h)·sin(kπh/2) for unit wave speed.
func NewWaveEigenmode(l, k int, amp float64) (*WaveProblem, error) {
	g, err := la.NewGrid(1, l)
	if err != nil {
		return nil, err
	}
	if k < 1 || k > l {
		return nil, fmt.Errorf("pde: eigenmode %d outside 1..%d", k, l)
	}
	a := la.PoissonMatrix(g)
	n := g.N()
	var entries []la.COOEntry
	// Top-right identity: du/dt = v.
	for i := 0; i < n; i++ {
		entries = append(entries, la.COOEntry{Row: i, Col: n + i, Val: 1})
	}
	// Bottom-left −A: dv/dt = −A·u.
	for i := 0; i < n; i++ {
		a.VisitRow(i, func(j int, v float64) {
			entries = append(entries, la.COOEntry{Row: n + i, Col: j, Val: -v})
		})
	}
	m := la.MustCSR(2*n, entries)
	h := g.H()
	shape := la.NewVector(n)
	for i := 0; i < n; i++ {
		shape[i] = math.Sin(float64(k) * math.Pi * float64(i+1) * h)
	}
	u0 := la.NewVector(2 * n)
	for i := 0; i < n; i++ {
		u0[i] = amp * shape[i]
	}
	return &WaveProblem{
		Grid:  g,
		M:     m,
		U0:    u0,
		k:     k,
		omega: 2 / h * math.Sin(float64(k)*math.Pi*h/2),
		amp:   amp,
		shape: shape,
	}, nil
}

// Omega returns the discrete eigenfrequency.
func (p *WaveProblem) Omega() float64 { return p.omega }

// ExactDisplacement returns the closed-form displacement field at time t.
func (p *WaveProblem) ExactDisplacement(t float64) la.Vector {
	u := la.NewVector(p.Grid.N())
	u.AddScaled(p.amp*math.Cos(p.omega*t), p.shape)
	return u
}
