package pde

import (
	"fmt"

	"analogacc/internal/la"
)

// Multigrid cycle extensions beyond the basic V-cycle: W-cycles (visiting
// coarse levels twice per descent, sturdier on harder problems) and full
// multigrid (FMG: nested iteration from the coarsest level up, giving a
// discretization-accurate first iterate in one pass). These strengthen the
// Section IV-A integration: the more coarse-level solves a cycle performs,
// the more work the analog accelerator absorbs.

// RedBlackSmoother returns a Gauss-Seidel smoother that sweeps the red
// points (x+y+z even) then the black points: unlike lexicographic GS, each
// half-sweep is order-independent, which is the standard smoother choice
// for parallel and hardware-offloaded multigrid.
func RedBlackSmoother(g la.Grid) Smoother {
	color := make([]bool, g.N()) // true = red
	for i := 0; i < g.N(); i++ {
		x, y, z := g.Coords(i)
		color[i] = (x+y+z)%2 == 0
	}
	return func(a *la.CSR, b, x la.Vector, sweeps int) {
		n := a.Dim()
		if n != len(color) {
			// Coarser levels have their own grids; fall back to plain GS
			// rather than guessing a coloring.
			GaussSeidelSmoother()(a, b, x, sweeps)
			return
		}
		half := func(red bool) {
			for i := 0; i < n; i++ {
				if color[i] != red {
					continue
				}
				sum := b[i]
				var d float64
				a.VisitRow(i, func(j int, v float64) {
					if j == i {
						d = v
					} else {
						sum -= v * x[j]
					}
				})
				x[i] = sum / d
			}
		}
		for s := 0; s < sweeps; s++ {
			half(true)
			half(false)
		}
	}
}

// SolveW runs W-cycles (each level recurses into the coarse grid twice)
// until the relative residual meets the tolerance.
func (mg *Multigrid) SolveW(b la.Vector) (la.Vector, MGStats, error) {
	return mg.solveCycles(b, 2)
}

// solveCycles is Solve generalized to a cycle index γ (1 = V, 2 = W).
func (mg *Multigrid) solveCycles(b la.Vector, gamma int) (la.Vector, MGStats, error) {
	fine := mg.levels[0]
	if len(b) != fine.a.Dim() {
		return nil, MGStats{}, fmt.Errorf("pde: b length %d != %d", len(b), fine.a.Dim())
	}
	x := la.NewVector(fine.a.Dim())
	stats := MGStats{Levels: len(mg.levels)}
	bn := b.Norm2()
	if bn == 0 {
		return x, stats, nil
	}
	for cycle := 1; cycle <= mg.opt.MaxCycles; cycle++ {
		if err := mg.cycle(0, b, x, gamma, &stats); err != nil {
			return x, stats, err
		}
		stats.Cycles = cycle
		stats.Residual = la.Residual(fine.a, x, b).Norm2() / bn
		if stats.Residual <= mg.opt.Tolerance {
			return x, stats, nil
		}
	}
	return x, stats, fmt.Errorf("pde: multigrid residual %v after %d cycles (target %v)",
		stats.Residual, mg.opt.MaxCycles, mg.opt.Tolerance)
}

// cycle is one γ-cycle at level idx, improving x in place.
func (mg *Multigrid) cycle(idx int, b, x la.Vector, gamma int, stats *MGStats) error {
	lv := mg.levels[idx]
	if idx == len(mg.levels)-1 {
		u, err := mg.opt.Coarse(lv.a, b)
		if err != nil {
			return fmt.Errorf("pde: coarse solve at L=%d: %w", lv.g.L, err)
		}
		stats.CoarseSolves++
		x.CopyFrom(u)
		return nil
	}
	mg.opt.Smoother(lv.a, b, x, mg.opt.PreSmooth)
	r := la.Residual(lv.a, x, b)
	coarse := mg.levels[idx+1]
	rc := restrict(lv.g, coarse.g, r)
	ec := la.NewVector(coarse.a.Dim())
	for g := 0; g < gamma; g++ {
		if err := mg.cycle(idx+1, rc, ec, gamma, stats); err != nil {
			return err
		}
		if idx+1 == len(mg.levels)-1 {
			break // re-solving the coarsest exactly is idempotent
		}
	}
	ef := prolong(coarse.g, lv.g, ec)
	x.Add(ef)
	mg.opt.Smoother(lv.a, b, x, mg.opt.PostSmooth)
	return nil
}

// SolveFMG runs full multigrid: the right-hand side is restricted to every
// level, the coarsest is solved outright, and the solution is interpolated
// upward with one V-cycle per level — then ordinary V-cycles polish to the
// tolerance. FMG reaches discretization-level accuracy in a single pass,
// so the polishing loop usually runs once or twice.
func (mg *Multigrid) SolveFMG(b la.Vector) (la.Vector, MGStats, error) {
	fine := mg.levels[0]
	if len(b) != fine.a.Dim() {
		return nil, MGStats{}, fmt.Errorf("pde: b length %d != %d", len(b), fine.a.Dim())
	}
	stats := MGStats{Levels: len(mg.levels)}
	// Restrict b down the hierarchy.
	bs := make([]la.Vector, len(mg.levels))
	bs[0] = b
	for l := 1; l < len(mg.levels); l++ {
		bs[l] = restrict(mg.levels[l-1].g, mg.levels[l].g, bs[l-1])
	}
	// Solve the coarsest level.
	x, err := mg.opt.Coarse(mg.levels[len(mg.levels)-1].a, bs[len(mg.levels)-1])
	if err != nil {
		return nil, stats, fmt.Errorf("pde: FMG coarsest solve: %w", err)
	}
	stats.CoarseSolves++
	// Interpolate upward, one V-cycle per level.
	for l := len(mg.levels) - 2; l >= 0; l-- {
		x = prolong(mg.levels[l+1].g, mg.levels[l].g, x)
		if err := mg.cycle(l, bs[l], x, 1, &stats); err != nil {
			return nil, stats, err
		}
	}
	// Polish with V-cycles to the requested tolerance.
	bn := b.Norm2()
	if bn == 0 {
		bn = 1
	}
	for cycle := 1; cycle <= mg.opt.MaxCycles; cycle++ {
		stats.Cycles = cycle
		stats.Residual = la.Residual(fine.a, x, b).Norm2() / bn
		if stats.Residual <= mg.opt.Tolerance {
			return x, stats, nil
		}
		if err := mg.cycle(0, b, x, 1, &stats); err != nil {
			return x, stats, err
		}
	}
	stats.Residual = la.Residual(fine.a, x, b).Norm2() / bn
	if stats.Residual <= mg.opt.Tolerance {
		return x, stats, nil
	}
	return x, stats, fmt.Errorf("pde: FMG residual %v after %d cycles", stats.Residual, mg.opt.MaxCycles)
}
