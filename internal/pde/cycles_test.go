package pde

import (
	"testing"

	"analogacc/internal/la"
)

func TestWCycleSolves(t *testing.T) {
	p, _ := Poisson(2, 31)
	mg, err := NewMultigrid(p.Grid, MGOptions{Tolerance: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	u, stats, err := mg.SolveW(p.B)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(p.Exact, 1e-6) {
		t.Fatalf("W-cycle error %v", p.L2Error(u))
	}
	// W-cycles visit the coarsest level more often than V-cycles do.
	_, vstats, err := mg.Solve(p.B)
	if err != nil {
		t.Fatal(err)
	}
	perCycleW := float64(stats.CoarseSolves) / float64(stats.Cycles)
	perCycleV := float64(vstats.CoarseSolves) / float64(vstats.Cycles)
	if perCycleW <= perCycleV {
		t.Fatalf("W-cycle coarse visits/cycle %v not above V's %v", perCycleW, perCycleV)
	}
	// And need no more cycles than V to converge.
	if stats.Cycles > vstats.Cycles {
		t.Fatalf("W-cycles (%d) slower than V-cycles (%d)", stats.Cycles, vstats.Cycles)
	}
}

func TestFMGReachesToleranceFast(t *testing.T) {
	p, _ := Poisson(2, 31)
	mg, err := NewMultigrid(p.Grid, MGOptions{Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	u, stats, err := mg.SolveFMG(p.B)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(p.Exact, 1e-5) {
		t.Fatalf("FMG error %v", p.L2Error(u))
	}
	// FMG's nested iteration leaves little polishing work.
	_, vstats, err := mg.Solve(p.B)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles >= vstats.Cycles {
		t.Fatalf("FMG polish cycles %d not below plain V count %d", stats.Cycles, vstats.Cycles)
	}
}

func TestFMGValidationAndZeroRHS(t *testing.T) {
	p, _ := Poisson(1, 15)
	mg, err := NewMultigrid(p.Grid, MGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mg.SolveFMG(la.NewVector(3)); err == nil {
		t.Fatal("short b accepted")
	}
	if _, _, err := mg.SolveW(la.NewVector(3)); err == nil {
		t.Fatal("short b accepted by W")
	}
	u, _, err := mg.SolveFMG(la.NewVector(p.Grid.N()))
	if err != nil {
		t.Fatal(err)
	}
	if u.NormInf() > 1e-12 {
		t.Fatalf("zero rhs gave %v", u.NormInf())
	}
}

func TestRedBlackSmootherConverges(t *testing.T) {
	p, _ := Poisson(2, 31)
	mg, err := NewMultigrid(p.Grid, MGOptions{
		Tolerance: 1e-9,
		Smoother:  RedBlackSmoother(p.Grid),
	})
	if err != nil {
		t.Fatal(err)
	}
	u, stats, err := mg.Solve(p.B)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(p.Exact, 1e-6) {
		t.Fatalf("red-black error %v", p.L2Error(u))
	}
	if stats.Cycles > 12 {
		t.Fatalf("red-black cycles %d", stats.Cycles)
	}
}

func TestRedBlackSmootherOrderIndependence(t *testing.T) {
	// Within one color, updates are independent: smoothing twice from the
	// same state must be deterministic and reduce the residual.
	g, _ := la.NewGrid(2, 5)
	a := la.PoissonMatrix(g)
	b := la.Constant(g.N(), 1)
	sm := RedBlackSmoother(g)
	x1 := la.NewVector(g.N())
	x2 := la.NewVector(g.N())
	sm(a, b, x1, 3)
	sm(a, b, x2, 3)
	if !x1.Equal(x2, 0) {
		t.Fatal("red-black smoothing not deterministic")
	}
	before := la.Residual(a, la.NewVector(g.N()), b).Norm2()
	after := la.Residual(a, x1, b).Norm2()
	if after >= before {
		t.Fatalf("smoothing did not reduce residual: %v -> %v", before, after)
	}
}

func TestRedBlackFallbackOnForeignMatrix(t *testing.T) {
	// A matrix whose size differs from the captured grid falls back to
	// plain Gauss-Seidel instead of mis-coloring.
	g, _ := la.NewGrid(2, 5)
	sm := RedBlackSmoother(g)
	a := la.Tridiag(7, -1, 2, -1)
	b := la.Constant(7, 1)
	x := la.NewVector(7)
	sm(a, b, x, 4)
	if x.NormInf() == 0 {
		t.Fatal("fallback smoother did nothing")
	}
}
