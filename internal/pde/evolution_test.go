package pde

import (
	"math"
	"testing"

	"analogacc/internal/la"
	"analogacc/internal/ode"
)

func TestHeatEigenmodesClosedFormMatchesRK4(t *testing.T) {
	p, err := NewHeatEigenmodes(15, map[int]float64{1: 1.0, 3: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if p.U0.NormInf() == 0 {
		t.Fatal("empty initial condition")
	}
	// Digital integration of the same ODE system must match the closed
	// form to integrator accuracy.
	sys := &ode.LinearSystem{A: p.M.Scaled(-1), B: p.Q}
	const tEnd = 0.002
	sol, err := ode.Solve(sys, p.U0, tEnd, ode.SolveOptions{Method: ode.RK4, Step: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	want := p.Exact(tEnd)
	if !sol.Last().Equal(want, 1e-8) {
		t.Fatalf("closed form and RK4 disagree by %v", la.Sub2(sol.Last(), want).NormInf())
	}
	// High modes decay faster: the k=3 content must shrink relative to k=1.
	if p.Exact(0.001).NormInf() >= p.U0.NormInf() {
		t.Fatal("heat did not decay")
	}
}

func TestHeatEigenmodeValidation(t *testing.T) {
	if _, err := NewHeatEigenmodes(8, map[int]float64{0: 1}); err == nil {
		t.Fatal("mode 0 accepted")
	}
	if _, err := NewHeatEigenmodes(8, map[int]float64{99: 1}); err == nil {
		t.Fatal("mode beyond grid accepted")
	}
	p, _ := NewHeatEigenmodes(8, nil)
	if p.Exact(0).NormInf() != 0 {
		t.Fatal("empty problem should be zero")
	}
	// A problem without modes: Exact must be nil-safe via modes==nil.
	plain := &HeatProblem{Grid: p.Grid}
	if plain.Exact(1) != nil {
		t.Fatal("exact without modes should be nil")
	}
}

func TestWaveEigenmodeClosedFormMatchesRK4(t *testing.T) {
	p, err := NewWaveEigenmode(15, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sys := &ode.LinearSystem{A: p.M.Scaled(-1), B: la.NewVector(p.M.Dim())}
	period := 2 * math.Pi / p.Omega()
	sol, err := ode.Solve(sys, p.U0, period, ode.SolveOptions{Method: ode.RK4, Step: period / 20000})
	if err != nil {
		t.Fatal(err)
	}
	// After one full period the displacement returns to the start.
	got := la.Vector(sol.Last()[:p.Grid.N()])
	if !got.Equal(la.Vector(p.U0[:p.Grid.N()]), 1e-6) {
		t.Fatalf("wave did not return after a period: %v", la.Sub2(got, la.Vector(p.U0[:p.Grid.N()])).NormInf())
	}
	// Half period: inverted.
	solHalf, err := ode.Solve(sys, p.U0, period/2, ode.SolveOptions{Method: ode.RK4, Step: period / 20000})
	if err != nil {
		t.Fatal(err)
	}
	inverted := la.Vector(p.U0[:p.Grid.N()]).Scaled(-1)
	if !la.Vector(solHalf.Last()[:p.Grid.N()]).Equal(inverted, 1e-6) {
		t.Fatal("wave not inverted at half period")
	}
	// Closed form agrees too.
	want := p.ExactDisplacement(period / 3)
	solThird, err := ode.Solve(sys, p.U0, period/3, ode.SolveOptions{Method: ode.RK4, Step: period / 20000})
	if err != nil {
		t.Fatal(err)
	}
	if !la.Vector(solThird.Last()[:p.Grid.N()]).Equal(want, 1e-6) {
		t.Fatal("closed form disagrees at T/3")
	}
}

func TestWaveValidation(t *testing.T) {
	if _, err := NewWaveEigenmode(8, 0, 1); err == nil {
		t.Fatal("mode 0 accepted")
	}
	if _, err := NewWaveEigenmode(8, 9, 1); err == nil {
		t.Fatal("mode beyond grid accepted")
	}
}
