// Package pde builds the partial-differential-equation workloads of the
// paper's evaluation: Poisson boundary-value problems in one, two and three
// dimensions (Section IV-B and Figure 6), the specific 3-D problem of
// Figure 7, geometric multigrid with pluggable smoothers/coarse solvers
// (Section IV-A), and the nonlinear Bratu problem used to exercise the
// Newton extension (Section VI-F).
package pde

import (
	"fmt"
	"math"

	"analogacc/internal/la"
)

// Problem is a discretized linear boundary-value problem A·u = b with an
// optional known exact solution for error reporting.
type Problem struct {
	Grid la.Grid
	A    *la.CSR
	B    la.Vector
	// Exact is the analytic solution sampled at grid points, nil when
	// unknown.
	Exact la.Vector
	// Name labels the problem in reports.
	Name string
}

// L2Error returns the L2 norm of (u − Exact), or NaN if Exact is unknown.
func (p *Problem) L2Error(u la.Vector) float64 {
	if p.Exact == nil {
		return math.NaN()
	}
	return la.Sub2(u, p.Exact).Norm2()
}

// Residual returns ‖b − A·u‖₂.
func (p *Problem) Residual(u la.Vector) float64 {
	return la.Residual(p.A, u, p.B).Norm2()
}

// Poisson builds −∇²u = f on the unit line/square/cube with homogeneous
// Dirichlet boundaries, choosing a smooth manufactured solution
// u = Π_d x_d(1−x_d)·(1+x_0) so the discrete answer is known to
// second-order accuracy and is NOT an eigenvector of the operator.
func Poisson(dims, l int) (*Problem, error) {
	g, err := la.NewGrid(dims, l)
	if err != nil {
		return nil, err
	}
	a := la.PoissonMatrix(g)
	// Manufactured: set exact values on the grid and b = A·exact, so the
	// discrete system's own solution is exactly `exact` (no
	// discretization-error ambiguity in solver comparisons).
	exact := la.NewVector(g.N())
	h := g.H()
	for i := 0; i < g.N(); i++ {
		xi, yi, zi := g.Coords(i)
		x := float64(xi+1) * h
		v := x * (1 - x) * (1 + x)
		if dims >= 2 {
			y := float64(yi+1) * h
			v *= y * (1 - y)
		}
		if dims == 3 {
			z := float64(zi+1) * h
			v *= z * (1 - z)
		}
		exact[i] = v
	}
	b := la.NewVector(g.N())
	a.Apply(b, exact)
	return &Problem{
		Grid:  g,
		A:     a,
		B:     b,
		Exact: exact,
		Name:  fmt.Sprintf("poisson-%dd-L%d", dims, l),
	}, nil
}

// Figure7Problem reproduces the exact setup of the paper's Figure 7: a 3-D
// Poisson problem "discretized using finite differences with 16 points over
// three dimensions, for a total of 4096 grid points. Boundary condition
// u(x,y,z) = 1.0 for the plane x = 0, u = 0 otherwise." The Dirichlet
// values fold into the right-hand side. l overrides the 16-point edge for
// smaller smoke-test instances.
func Figure7Problem(l int) (*Problem, error) {
	if l <= 0 {
		l = 16
	}
	g, err := la.NewGrid(3, l)
	if err != nil {
		return nil, err
	}
	a := la.PoissonMatrix(g)
	h := g.H()
	b := la.NewVector(g.N())
	// The x=0 boundary plane holds u=1; each interior node adjacent to it
	// (xi == 0) gains +1/h² on the right-hand side.
	inv := 1 / (h * h)
	for i := 0; i < g.N(); i++ {
		xi, _, _ := g.Coords(i)
		if xi == 0 {
			b[i] = inv
		}
	}
	return &Problem{Grid: g, A: a, B: b, Name: fmt.Sprintf("figure7-3d-L%d", l)}, nil
}

// StripDecomposition returns the index blocks of the natural 1-D strip
// decomposition of a 2-D problem (Section IV-B's "set of independent 1-D
// subproblems"): one block per grid row.
func StripDecomposition(g la.Grid) [][]int {
	if g.Dims != 2 {
		return nil
	}
	blocks := make([][]int, g.L)
	for y := 0; y < g.L; y++ {
		row := make([]int, g.L)
		for x := 0; x < g.L; x++ {
			row[x] = g.Index(x, y, 0)
		}
		blocks[y] = row
	}
	return blocks
}
