package jobs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testConfig(t *testing.T, path string) Config {
	t.Helper()
	return Config{Path: path, LeaseTTL: time.Second, Clock: time.Now}
}

func mustOpen(t *testing.T, cfg Config) *Queue {
	t.Helper()
	q, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q
}

func mustSubmit(t *testing.T, q *Queue, tenant string, fp uint64, payload string) *Job {
	t.Helper()
	j, err := q.Submit(tenant, "solve", fp, []byte(payload))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestWALRoundTripAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	q := mustOpen(t, testConfig(t, path))
	j1 := mustSubmit(t, q, "a", 1, "p1")
	j2 := mustSubmit(t, q, "b", 2, "p2")
	// Complete j1, leave j2 queued.
	leased := q.Lease("w0")
	if leased == nil || leased.ID != j1.ID {
		t.Fatalf("leased %+v, want %s", leased, j1.ID)
	}
	if err := q.Start(j1.ID, "w0"); err != nil {
		t.Fatal(err)
	}
	if err := q.Complete(j1.ID, "w0", []byte("r1")); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2 := mustOpen(t, testConfig(t, path))
	g1, ok := q2.Get(j1.ID)
	if !ok || g1.State != StateDone || string(g1.Result) != "r1" {
		t.Fatalf("j1 after restart: %+v", g1)
	}
	g2, ok := q2.Get(j2.ID)
	if !ok || g2.State != StateQueued || string(g2.Payload) != "p2" {
		t.Fatalf("j2 after restart: %+v", g2)
	}
	if s := q2.Stats(); s.Replayed != 2 {
		t.Fatalf("replayed = %d, want 2", s.Replayed)
	}
}

func TestWALTornTailRecordDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	q := mustOpen(t, testConfig(t, path))
	j1 := mustSubmit(t, q, "a", 1, "p1")
	mustSubmit(t, q, "a", 2, "p2")
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: chop the last record mid-payload, simulating a
	// crash during an append.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	q2 := mustOpen(t, testConfig(t, path))
	s := q2.Stats()
	if s.TornDropped != 1 {
		t.Fatalf("torn dropped = %d, want 1", s.TornDropped)
	}
	// The first job survives; the second's submit record was the torn
	// tail, so it is gone — an unacknowledged submit, not lost state.
	if _, ok := q2.Get(j1.ID); !ok {
		t.Fatal("first job lost with the torn tail")
	}
	if s.Replayed != 1 {
		t.Fatalf("replayed = %d, want 1", s.Replayed)
	}
}

func TestWALChecksumMismatchAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	q := mustOpen(t, testConfig(t, path))
	mustSubmit(t, q, "a", 1, "p1")
	mustSubmit(t, q, "a", 2, "p2")
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the FIRST record's payload: mid-file
	// corruption, not a torn tail.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(walMagic)+12] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(testConfig(t, path))
	if err == nil {
		t.Fatal("corrupt journal replayed without error")
	}
	if !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("error %q does not name the checksum mismatch", err)
	}
}

func TestWALBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL0 some garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(testConfig(t, path)); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad-magic journal opened: err=%v", err)
	}
}

func TestWALBootCompactionBoundsJournal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	q := mustOpen(t, testConfig(t, path))
	// Ten full lifecycles = ~40 records.
	for i := 0; i < 10; i++ {
		j := mustSubmit(t, q, "a", uint64(100+i), "p")
		if got := q.Lease("w0"); got == nil || got.ID != j.ID {
			t.Fatalf("lease %d: %+v", i, got)
		}
		if err := q.Start(j.ID, "w0"); err != nil {
			t.Fatal(err)
		}
		if err := q.Complete(j.ID, "w0", []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	grown, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	// Reopen compacts: 10 snap records + meta, far fewer bytes than the
	// transition-by-transition history.
	q2 := mustOpen(t, testConfig(t, path))
	if s := q2.Stats(); s.Compactions != 1 || s.Done != 10 {
		t.Fatalf("stats after compaction: %+v", s)
	}
	if err := q2.Close(); err != nil {
		t.Fatal(err)
	}
	compacted, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if compacted.Size() >= grown.Size() {
		t.Fatalf("compaction did not shrink the journal: %d → %d bytes", grown.Size(), compacted.Size())
	}

	// And the compacted journal replays identically.
	q3 := mustOpen(t, testConfig(t, path))
	if s := q3.Stats(); s.Done != 10 || s.Queued != 0 {
		t.Fatalf("state after double restart: %+v", s)
	}
}
