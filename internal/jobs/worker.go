package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Exec runs one job's payload and returns its opaque result, or a
// non-empty error code (with a message) on failure. The context is
// cancelled when the job is cancelled or the worker pool is force-
// stopped; an Exec that honors it makes cancellation prompt.
type Exec func(ctx context.Context, j *Job) (result []byte, errCode, errMsg string)

// Workers drives a queue with n executor goroutines plus a lease-expiry
// sweeper. Each worker leases a job, marks it running, heartbeat-renews
// the lease at TTL/3 while Exec runs, and records the outcome. A worker
// (or the whole process) dying mid-job is recovered by lease expiry —
// live, by the sweeper; after a crash, by boot-time replay.
type Workers struct {
	q    *Queue
	exec Exec
	// execDelay is a fault-injection hook: every job sleeps this long
	// (context-aware) between leasing and executing, giving crash tests
	// a deterministic mid-flight window. Zero in production.
	execDelay time.Duration

	cancelLoops context.CancelFunc
	wg          sync.WaitGroup
}

// StartWorkers launches n workers over q. execDelay is the
// fault-injection hold described on Workers (zero for production).
func StartWorkers(q *Queue, n int, exec Exec, execDelay time.Duration) *Workers {
	ctx, cancel := context.WithCancel(context.Background())
	w := &Workers{q: q, exec: exec, execDelay: execDelay, cancelLoops: cancel}
	for i := 0; i < n; i++ {
		owner := fmt.Sprintf("worker-%d", i)
		w.wg.Add(1)
		go w.loop(ctx, owner)
	}
	if n > 0 {
		w.wg.Add(1)
		go w.sweep(ctx)
	}
	return w
}

// Stop ends the lease loops and waits for in-flight jobs to finish; if
// ctx expires first, running jobs' contexts are cancelled and the wait
// resumes until they acknowledge. Pair with Queue.Drain for the
// graceful path.
func (w *Workers) Stop(ctx context.Context) {
	w.cancelLoops()
	done := make(chan struct{})
	go func() {
		w.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		w.q.abortRunning()
		<-done
	}
}

// maxWaveMates bounds how many affinity-mates one dispatch drains
// alongside the leased job, so a wave never exceeds a full lane batch.
const maxWaveMates = 15

func (w *Workers) loop(ctx context.Context, owner string) {
	defer w.wg.Done()
	idle := time.NewTicker(250 * time.Millisecond)
	defer idle.Stop()
	for {
		j := w.q.Lease(owner)
		if j == nil {
			select {
			case <-ctx.Done():
				return
			case <-w.q.Wake():
			case <-w.q.Closed():
				return
			case <-idle.C: // re-check after lease expiries
			}
			continue
		}
		// Fingerprint-sticky dispatch: drain queued operator-mates into
		// this turn and run them concurrently, so their solves land in
		// the server's coalescing window and execute as one lane wave.
		// Each mate gets the full run lifecycle (own cancel hook,
		// heartbeat, outcome record) under this worker's owner name.
		var mates []*Job
		if j.Affinity != 0 {
			mates = w.q.LeaseMatching(owner, j.Affinity, maxWaveMates)
		}
		if len(mates) == 0 {
			w.run(j, owner)
			continue
		}
		var waveWG sync.WaitGroup
		for _, m := range append([]*Job{j}, mates...) {
			m := m
			waveWG.Add(1)
			go func() {
				defer waveWG.Done()
				w.run(m, owner)
			}()
		}
		waveWG.Wait()
	}
}

// sweep re-queues expired leases on a cadence well under the TTL.
func (w *Workers) sweep(ctx context.Context) {
	defer w.wg.Done()
	period := w.q.cfg.LeaseTTL / 4
	if period < 10*time.Millisecond {
		period = 10 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-w.q.Closed():
			return
		case <-tick.C:
			w.q.ExpireLeases()
		}
	}
}

func (w *Workers) run(j *Job, owner string) {
	// The job context is deliberately not derived from the loop context:
	// stopping intake must not abort work already leased. It is
	// cancelled by Queue.Cancel (via the registered hook) or by
	// Stop's deadline enforcement.
	jctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w.q.registerCancel(j.ID, cancel)
	defer w.q.unregisterCancel(j.ID)

	if err := w.q.Start(j.ID, owner); err != nil {
		return // lease lost between Lease and Start
	}

	// Heartbeat until the outcome is recorded. A failed renewal means
	// the lease expired and was re-queued or re-leased: this attempt's
	// answer no longer counts, so stop burning time on it.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(w.q.cfg.LeaseTTL / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				if err := w.q.Renew(j.ID, owner); err != nil {
					cancel()
					return
				}
			}
		}
	}()

	if w.execDelay > 0 {
		select {
		case <-jctx.Done():
		case <-time.After(w.execDelay):
		}
	}

	var (
		result  []byte
		code    string
		msg     string
		aborted = jctx.Err() != nil
	)
	if aborted {
		code, msg = "cancelled", "cancelled before execution"
	} else {
		result, code, msg = w.exec(jctx, j)
	}
	close(hbStop)
	hbWG.Wait()

	var err error
	if code == "" {
		err = w.q.Complete(j.ID, owner, result)
	} else {
		err = w.q.Fail(j.ID, owner, code, msg)
	}
	// ErrNotOwner means the lease expired mid-run and the job moved on;
	// the discarded outcome is by design (current owner wins).
	_ = errors.Is(err, ErrNotOwner)
}
