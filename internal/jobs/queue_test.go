package jobs

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic lease expiry.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestStateMachineEdges(t *testing.T) {
	legal := map[[2]State]bool{
		{StateQueued, StateLeased}:     true,
		{StateQueued, StateCancelled}:  true,
		{StateLeased, StateRunning}:    true,
		{StateLeased, StateQueued}:     true,
		{StateLeased, StateCancelled}:  true,
		{StateLeased, StateFailed}:     true,
		{StateRunning, StateDone}:      true,
		{StateRunning, StateFailed}:    true,
		{StateRunning, StateCancelled}: true,
		{StateRunning, StateQueued}:    true,
	}
	all := []State{StateQueued, StateLeased, StateRunning, StateDone, StateFailed, StateCancelled}
	for _, from := range all {
		for _, to := range all {
			if got := validNext(from, to); got != legal[[2]State{from, to}] {
				t.Errorf("validNext(%s, %s) = %v", from, to, got)
			}
		}
	}
}

func TestLeaseExpiryRequeueDeterminism(t *testing.T) {
	clock := newFakeClock()
	q := mustOpen(t, Config{LeaseTTL: time.Second, Clock: clock.Now})
	var ids []string
	for i := 0; i < 3; i++ {
		ids = append(ids, mustSubmit(t, q, "a", uint64(i+1), "p").ID)
	}
	// Lease all three to workers that then go silent.
	for i := 0; i < 3; i++ {
		j := q.Lease(fmt.Sprintf("w%d", i))
		if j == nil || j.ID != ids[i] {
			t.Fatalf("lease %d: got %+v, want %s", i, j, ids[i])
		}
	}
	if n := q.ExpireLeases(); n != 0 {
		t.Fatalf("expired %d leases before the TTL", n)
	}
	// One renewal keeps a lease alive across the first expiry horizon.
	clock.Advance(700 * time.Millisecond)
	if err := q.Renew(ids[1], "w1"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(600 * time.Millisecond) // w0, w2 expired; w1 renewed
	if n := q.ExpireLeases(); n != 2 {
		t.Fatalf("expired %d leases, want 2", n)
	}
	// Re-queues preserve submit order: ids[0] before ids[2]. The re-lease
	// is attempt 2 — attempt counts survive the round trip.
	j := q.Lease("w3")
	if j == nil || j.ID != ids[0] || j.Attempts != 2 {
		t.Fatalf("first re-lease: %+v, want %s on attempt 2", j, ids[0])
	}
	if j2 := q.Lease("w4"); j2 == nil || j2.ID != ids[2] {
		t.Fatalf("second re-lease: %+v, want %s", j2, ids[2])
	}
	// The renewed lease is untouched.
	if g, _ := q.Get(ids[1]); g.State != StateLeased || g.LeaseOwner != "w1" {
		t.Fatalf("renewed lease disturbed: %+v", g)
	}
	if s := q.Stats(); s.LeaseExpired != 2 {
		t.Fatalf("lease expired counter = %d, want 2", s.LeaseExpired)
	}
}

func TestDuplicateSubmitDedup(t *testing.T) {
	q := mustOpen(t, Config{LeaseTTL: time.Second})
	j := mustSubmit(t, q, "a", 42, "p")

	// Dedup against a live (queued) job.
	dup, err := q.Submit("a", "solve", 42, []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Deduped || dup.ID != j.ID {
		t.Fatalf("live dedup: %+v", dup)
	}

	// Complete it; dedup now serves the stored result without re-running.
	if got := q.Lease("w0"); got == nil || got.ID != j.ID {
		t.Fatal("lease failed")
	}
	if err := q.Start(j.ID, "w0"); err != nil {
		t.Fatal(err)
	}
	if err := q.Complete(j.ID, "w0", []byte("the answer")); err != nil {
		t.Fatal(err)
	}
	dup2, err := q.Submit("b", "solve", 42, []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if !dup2.Deduped || dup2.ID != j.ID || dup2.State != StateDone || string(dup2.Result) != "the answer" {
		t.Fatalf("done dedup: %+v", dup2)
	}
	if s := q.Stats(); s.Deduped != 2 || s.Submitted != 1 {
		t.Fatalf("stats: %+v", s)
	}

	// A different kind with the same fingerprint is NOT deduplicated.
	other, err := q.Submit("a", "batch", 42, []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if other.Deduped {
		t.Fatal("cross-kind dedup")
	}
	if got := q.Lease("w1"); got == nil || got.ID != other.ID {
		t.Fatalf("lease: %+v", got)
	}
	if err := q.Start(other.ID, "w1"); err != nil {
		t.Fatal(err)
	}
	if err := q.Complete(other.ID, "w1", []byte("r2")); err != nil {
		t.Fatal(err)
	}

	// A failed job does not answer duplicates: the retry runs.
	jf := mustSubmit(t, q, "a", 99, "p")
	if got := q.Lease("w1"); got == nil || got.ID != jf.ID {
		t.Fatalf("lease: %+v", got)
	}
	if err := q.Fail(jf.ID, "w1", "solve_failed", "boom"); err != nil {
		t.Fatal(err)
	}
	again, err := q.Submit("a", "solve", 99, []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if again.Deduped || again.ID == jf.ID {
		t.Fatalf("failed job answered a duplicate: %+v", again)
	}
}

// TestOpenCreatesJournalDirectory: `alad -store /var/lib/alad/jobs.wal`
// on a fresh host must not require the operator to mkdir first.
func TestOpenCreatesJournalDirectory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nested", "dir", "jobs.wal")
	q := mustOpen(t, testConfig(t, path))
	j := mustSubmit(t, q, "a", 3, "p")
	q.Close()

	q2 := mustOpen(t, testConfig(t, path))
	defer q2.Close()
	if got, ok := q2.Get(j.ID); !ok || got.State != StateQueued {
		t.Fatalf("after restart: job %+v, ok %v", got, ok)
	}
}

func TestDedupSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	q := mustOpen(t, testConfig(t, path))
	j := mustSubmit(t, q, "a", 7, "p")
	q.Lease("w0")
	if err := q.Start(j.ID, "w0"); err != nil {
		t.Fatal(err)
	}
	if err := q.Complete(j.ID, "w0", []byte("r")); err != nil {
		t.Fatal(err)
	}
	q.Close()

	q2 := mustOpen(t, testConfig(t, path))
	dup, err := q2.Submit("a", "solve", 7, []byte("p"))
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Deduped || dup.ID != j.ID || string(dup.Result) != "r" {
		t.Fatalf("dedup after restart: %+v", dup)
	}
}

func TestCrashReplayReclaimsLeases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	q := mustOpen(t, testConfig(t, path))
	j1 := mustSubmit(t, q, "a", 1, "p1")
	j2 := mustSubmit(t, q, "a", 2, "p2")
	q.Lease("w0")
	if err := q.Start(j1.ID, "w0"); err != nil {
		t.Fatal(err)
	}
	// Crash: no Close, no Complete — reopen the journal cold.
	q2 := mustOpen(t, testConfig(t, path))
	g1, _ := q2.Get(j1.ID)
	if g1 == nil || g1.State != StateQueued || g1.Attempts != 1 || g1.LeaseOwner != "" {
		t.Fatalf("orphaned lease not reclaimed: %+v", g1)
	}
	if s := q2.Stats(); s.LeaseExpired != 1 || s.Queued != 2 {
		t.Fatalf("stats after crash replay: %+v", s)
	}
	// Replay order: j1 (earlier submit) leases before j2.
	if got := q2.Lease("w0"); got == nil || got.ID != j1.ID {
		t.Fatalf("first lease after replay: %+v, want %s", got, j1.ID)
	}
	if got := q2.Lease("w0"); got == nil || got.ID != j2.ID {
		t.Fatalf("second lease after replay: %+v, want %s", got, j2.ID)
	}
}

func TestCancelRequestedSurvivesCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	q := mustOpen(t, testConfig(t, path))
	j := mustSubmit(t, q, "a", 1, "p")
	q.Lease("w0")
	if _, err := q.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	// Crash before the worker acknowledges: recovery must land the job
	// in cancelled, not re-run work nobody wants.
	q2 := mustOpen(t, testConfig(t, path))
	g, _ := q2.Get(j.ID)
	if g == nil || g.State != StateCancelled {
		t.Fatalf("cancel lost in crash: %+v", g)
	}
}

func TestCancelLifecycle(t *testing.T) {
	q := mustOpen(t, Config{LeaseTTL: time.Second})
	// Queued: cancels immediately.
	j1 := mustSubmit(t, q, "a", 1, "p")
	got, err := q.Cancel(j1.ID)
	if err != nil || got.ID != j1.ID {
		t.Fatal(err)
	}
	if g, _ := q.Get(j1.ID); g.State != StateCancelled {
		t.Fatalf("queued cancel: %+v", g)
	}
	if q.Lease("w0") != nil {
		t.Fatal("cancelled job leased")
	}

	// Running: the registered context hook fires, the worker's Fail is
	// recorded as cancelled.
	j2 := mustSubmit(t, q, "a", 2, "p")
	q.Lease("w0")
	if err := q.Start(j2.ID, "w0"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	q.registerCancel(j2.ID, cancel)
	if _, err := q.Cancel(j2.ID); err != nil {
		t.Fatal(err)
	}
	if ctx.Err() == nil {
		t.Fatal("cancel hook not invoked")
	}
	if err := q.Fail(j2.ID, "w0", "cancelled", "ctx cancelled"); err != nil {
		t.Fatal(err)
	}
	if g, _ := q.Get(j2.ID); g.State != StateCancelled {
		t.Fatalf("running cancel: %+v", g)
	}
	if s := q.Stats(); s.CancelledTot != 2 || s.FailedTotal != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestTenantFairSchedulingAndQuota(t *testing.T) {
	q := mustOpen(t, Config{LeaseTTL: time.Second, TenantQuota: 4})
	var a, b []string
	for i := 0; i < 4; i++ {
		a = append(a, mustSubmit(t, q, "alice", uint64(10+i), "p").ID)
	}
	for i := 0; i < 2; i++ {
		b = append(b, mustSubmit(t, q, "bob", uint64(20+i), "p").ID)
	}
	// Round-robin: alice and bob alternate while both have work, then
	// alice drains her backlog.
	want := []string{a[0], b[0], a[1], b[1], a[2], a[3]}
	for i, id := range want {
		j := q.Lease("w")
		if j == nil || j.ID != id {
			t.Fatalf("lease %d: got %+v, want %s", i, j, id)
		}
	}

	// alice holds 4 live jobs = her quota; the fifth submission bounces.
	if _, err := q.Submit("alice", "solve", 30, []byte("p")); !errors.Is(err, ErrQuota) {
		t.Fatalf("quota not enforced: %v", err)
	}
	// bob is under quota and unaffected.
	if _, err := q.Submit("bob", "solve", 31, []byte("p")); err != nil {
		t.Fatalf("bob blocked by alice's quota: %v", err)
	}
}

func TestBacklogBound(t *testing.T) {
	q := mustOpen(t, Config{LeaseTTL: time.Second, MaxQueued: 2})
	mustSubmit(t, q, "a", 1, "p")
	mustSubmit(t, q, "a", 2, "p")
	if _, err := q.Submit("a", "solve", 3, []byte("p")); !errors.Is(err, ErrBacklog) {
		t.Fatalf("backlog not enforced: %v", err)
	}
}

func TestStaleOwnerResultDiscarded(t *testing.T) {
	clock := newFakeClock()
	q := mustOpen(t, Config{LeaseTTL: time.Second, Clock: clock.Now})
	j := mustSubmit(t, q, "a", 1, "p")
	q.Lease("w0")
	if err := q.Start(j.ID, "w0"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second)
	q.ExpireLeases()
	q.Lease("w1") // re-leased by a live worker
	if err := q.Start(j.ID, "w1"); err != nil {
		t.Fatal(err)
	}
	// The zombie's answer bounces; the job is not corrupted.
	if err := q.Complete(j.ID, "w0", []byte("stale")); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("stale complete: %v", err)
	}
	if err := q.Complete(j.ID, "w1", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if g, _ := q.Get(j.ID); string(g.Result) != "fresh" {
		t.Fatalf("result: %q", g.Result)
	}
}

func TestRetentionEviction(t *testing.T) {
	q := mustOpen(t, Config{LeaseTTL: time.Second, RetainDone: 2})
	var ids []string
	for i := 0; i < 4; i++ {
		j := mustSubmit(t, q, "a", uint64(i+1), "p")
		ids = append(ids, j.ID)
		q.Lease("w")
		if err := q.Start(j.ID, "w"); err != nil {
			t.Fatal(err)
		}
		if err := q.Complete(j.ID, "w", []byte("r")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := q.Get(ids[0]); ok {
		t.Fatal("oldest terminal job not evicted")
	}
	if _, ok := q.Get(ids[3]); !ok {
		t.Fatal("newest terminal job evicted")
	}
	// An evicted fingerprint no longer answers duplicates.
	if dup, _ := q.Submit("a", "solve", 1, []byte("p")); dup == nil || dup.Deduped {
		t.Fatalf("evicted job still deduplicating: %+v", dup)
	}
}

func TestWorkersEndToEnd(t *testing.T) {
	q := mustOpen(t, Config{LeaseTTL: 500 * time.Millisecond})
	exec := func(ctx context.Context, j *Job) ([]byte, string, string) {
		if string(j.Payload) == "fail" {
			return nil, "solve_failed", "asked to fail"
		}
		return append([]byte("ok:"), j.Payload...), "", ""
	}
	w := StartWorkers(q, 3, exec, 0)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		w.Stop(ctx)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var ids []string
	for i := 0; i < 8; i++ {
		payload := fmt.Sprintf("p%d", i)
		if i == 5 {
			payload = "fail"
		}
		ids = append(ids, mustSubmit(t, q, fmt.Sprintf("t%d", i%2), uint64(i+1), payload).ID)
	}
	for i, id := range ids {
		j, err := q.Wait(ctx, id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if i == 5 {
			if j.State != StateFailed || j.ErrCode != "solve_failed" {
				t.Fatalf("job %d: %+v", i, j)
			}
			continue
		}
		if j.State != StateDone || string(j.Result) != fmt.Sprintf("ok:p%d", i) {
			t.Fatalf("job %d: state=%s result=%q err=%s", i, j.State, j.Result, j.ErrMsg)
		}
	}
	if s := q.Stats(); s.Completed != 7 || s.FailedTotal != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestWorkerCancellationMidRun(t *testing.T) {
	q := mustOpen(t, Config{LeaseTTL: time.Second})
	started := make(chan string, 1)
	exec := func(ctx context.Context, j *Job) ([]byte, string, string) {
		started <- j.ID
		<-ctx.Done()
		return nil, "cancelled", ctx.Err().Error()
	}
	w := StartWorkers(q, 1, exec, 0)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		w.Stop(ctx)
	}()

	j := mustSubmit(t, q, "a", 1, "p")
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started the job")
	}
	if _, err := q.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := q.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state %s, want cancelled", got.State)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	q := mustOpen(t, Config{LeaseTTL: time.Second})
	j := mustSubmit(t, q, "a", 1, "p")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := q.Wait(ctx, j.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wait: %v", err)
	}
	// The dangling waiter was removed.
	q.mu.Lock()
	n := len(q.waiters[j.ID])
	q.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d waiters leaked", n)
	}
}
