// Package jobs is the durable asynchronous job queue behind alad's
// /v1/jobs API: a strict job state machine persisted in an append-only,
// checksummed write-ahead log so that a crash — up to and including a
// kill -9 mid-solve — recovers deterministically on restart. Where the
// synchronous solve path holds an HTTP request open from admission to
// answer (and loses everything queued or in flight when the process
// dies), a job outlives the connection that submitted it and the process
// that leased it.
//
// The lifecycle is:
//
//	queued → leased → running → done | failed | cancelled
//	           ↑__________|               (lease expiry re-queues)
//
// A worker takes ownership of a job by leasing it; the lease carries an
// expiry that the worker must heartbeat-renew while it solves. A worker
// that dies silently simply stops renewing, the lease expires, and the
// job goes back to the queue for another attempt — at its original
// submit position, so re-queues never reorder the backlog.
//
// Durability invariants (see wal.go for the record format):
//
//   - every state transition is appended to the journal before the
//     in-memory state changes are visible to callers; submissions and
//     terminal transitions are fsynced, so an acknowledged submit and a
//     recorded result survive power loss;
//   - lease/start/requeue records are appended without fsync: losing a
//     tail of them in a crash only makes a job look queued, which is
//     exactly what boot-time recovery does to leased jobs anyway (the
//     process that held every lease is the one that died);
//   - lease renewals are process-local and never journaled;
//   - replay applies records in sequence order, then reclaims any job
//     still leased or running back to queued (or to cancelled, if a
//     cancel was requested), preserving attempt counts;
//   - after replay the journal is compacted: live state is snapshotted
//     to a fresh file which atomically replaces the old one, so the
//     journal never grows without bound across restarts.
//
// The package is dependency-free (stdlib only) and knows nothing about
// solving: payloads and results are opaque bytes, execution is a
// callback (see worker.go), and content identity is a caller-provided
// 64-bit fingerprint. Completed results are indexed by that fingerprint
// so a duplicate submission is answered from the store without re-running
// anything.
package jobs

import "errors"

// State is a job's position in the lifecycle state machine.
type State string

// The job states. Done, Failed, and Cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateLeased    State = "leased"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// validNext enumerates the legal state-machine edges. Everything else —
// including self-transitions — is rejected, both on the live path and
// during replay, so a corrupt or hand-edited journal cannot smuggle a
// job into an impossible history.
func validNext(from, to State) bool {
	switch from {
	case StateQueued:
		return to == StateLeased || to == StateCancelled
	case StateLeased:
		// leased → queued is lease expiry; leased → failed covers a
		// worker that discovers an unrunnable payload before Start.
		return to == StateRunning || to == StateQueued || to == StateCancelled || to == StateFailed
	case StateRunning:
		// running → queued is expiry of a lease whose worker went silent
		// mid-solve (or died with the process).
		return to == StateDone || to == StateFailed || to == StateCancelled || to == StateQueued
	default:
		return false // terminal states have no out-edges
	}
}

// Job is one unit of asynchronous work. Fields are exported (and
// JSON-tagged) because submit and snapshot journal records carry the
// whole job; timestamps are unix nanoseconds so records round-trip
// bit-identically through replay.
type Job struct {
	// ID is the queue-assigned identity ("j-" + submit sequence).
	ID string `json:"id"`
	// Tenant scopes fair scheduling and quotas.
	Tenant string `json:"tenant,omitempty"`
	// Kind names the payload schema (the executor dispatches on it).
	Kind string `json:"kind"`
	// Fingerprint is the caller's content address for the request;
	// completed results are deduplicated on it.
	Fingerprint uint64 `json:"fingerprint"`
	// Affinity is an optional co-scheduling hint: queued jobs sharing a
	// non-zero affinity are worth executing together (alad sets it to the
	// matrix fingerprint so same-operator solves drain as one coalesced
	// lane wave). Zero means no affinity; the journal carries it like any
	// other submit field, so it survives restarts.
	Affinity uint64 `json:"affinity,omitempty"`
	// Payload is the opaque request body.
	Payload []byte `json:"payload,omitempty"`

	State State `json:"state"`
	// Attempts counts leases taken on this job (1 on the first lease).
	Attempts int `json:"attempts"`
	// SubmitSeq is the journal sequence of the submit record; the queue
	// orders strictly by it, including after a re-queue.
	SubmitSeq   uint64 `json:"submit_seq"`
	SubmittedNs int64  `json:"submitted_ns"`
	UpdatedNs   int64  `json:"updated_ns"`

	// LeaseOwner and LeaseExpiryNs are live only in leased/running.
	LeaseOwner    string `json:"lease_owner,omitempty"`
	LeaseExpiryNs int64  `json:"lease_expiry_ns,omitempty"`
	// CancelRequested marks a leased/running job whose cancellation has
	// been asked for but not yet honored by its worker.
	CancelRequested bool `json:"cancel_requested,omitempty"`

	// Result is the opaque answer of a done job; ErrCode/ErrMsg describe
	// a failed one.
	Result  []byte `json:"result,omitempty"`
	ErrCode string `json:"err_code,omitempty"`
	ErrMsg  string `json:"err_msg,omitempty"`

	// Deduped is set (in-memory only, never journaled) on the copy
	// returned for a submission that was answered by an existing job.
	Deduped bool `json:"-"`
}

// clone returns an independent copy safe to hand outside the queue lock.
func (j *Job) clone() *Job {
	c := *j
	if j.Payload != nil {
		c.Payload = append([]byte(nil), j.Payload...)
	}
	if j.Result != nil {
		c.Result = append([]byte(nil), j.Result...)
	}
	return &c
}

// Sentinel errors. API layers map these to protocol answers (429 for
// ErrBacklog/ErrQuota, 404 for ErrNotFound, 409 for ErrBadTransition).
var (
	// ErrBacklog: the queue already holds MaxQueued pending jobs.
	ErrBacklog = errors.New("jobs: queue backlog full")
	// ErrQuota: the tenant already holds its quota of live jobs.
	ErrQuota = errors.New("jobs: tenant quota exhausted")
	// ErrNotFound: no job with that ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrNotOwner: the caller's lease is stale (expired and re-leased, or
	// never held); its result was discarded.
	ErrNotOwner = errors.New("jobs: lease not held by caller")
	// ErrBadTransition: the requested edge is not in the state machine.
	ErrBadTransition = errors.New("jobs: illegal state transition")
	// ErrClosed: the queue has shut down.
	ErrClosed = errors.New("jobs: queue closed")
)
