package jobs

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// The journal is a flat file of length-prefixed, checksummed records:
//
//	magic "ALADWAL1" (8 bytes)
//	repeat:
//	  uint32 LE  payload length
//	  uint32 LE  CRC-32 (IEEE) of payload
//	  payload    JSON walRecord
//
// Append-only means exactly one failure geometry is survivable by
// construction: a torn write at the tail. readWAL drops an incomplete
// tail record (the transition it described is re-derived by recovery —
// see the package comment) but refuses to replay any record whose
// checksum does not match its bytes: mid-file corruption means the disk
// or an editor rewrote history, and guessing at state is worse than
// stopping with a clear error.
//
// Boot-time compaction rewrites the journal as a snapshot (one meta
// record carrying the sequence counter, then one snap record per
// retained job, in submit order) into <path>.tmp, fsyncs, and atomically
// renames it over the old file — so appends always start on a freshly
// verified, bounded-size journal.

const (
	walMagic = "ALADWAL1"
	// walMaxRecord bounds a single record (a job payload can carry a
	// full request body, so this tracks the serve body cap with slack).
	// A length prefix beyond it is corruption, not a big record.
	walMaxRecord = 64 << 20
)

// Record ops. Submit and snap carry the full job; the rest patch one.
const (
	opMeta      = "meta"
	opSubmit    = "submit"
	opLease     = "lease"
	opStart     = "start"
	opRequeue   = "requeue"
	opCancelReq = "cancel_req"
	opDone      = "done"
	opFail      = "fail"
	opCancel    = "cancel"
	opSnap      = "snap"
)

// walRecord is one journal entry. One struct covers every op; unused
// fields stay at their zero value and are omitted from the JSON.
type walRecord struct {
	Seq uint64 `json:"seq"`
	Op  string `json:"op"`
	// NowNs stamps the transition (becomes the job's UpdatedNs).
	NowNs int64  `json:"now_ns,omitempty"`
	ID    string `json:"id,omitempty"`
	// Job rides submit/snap records.
	Job *Job `json:"job,omitempty"`
	// Owner and ExpiryNs ride lease records.
	Owner    string `json:"owner,omitempty"`
	ExpiryNs int64  `json:"expiry_ns,omitempty"`
	// Result rides done records; ErrCode/ErrMsg ride fail records.
	Result  []byte `json:"result,omitempty"`
	ErrCode string `json:"err_code,omitempty"`
	ErrMsg  string `json:"err_msg,omitempty"`
	// NextSeq rides the meta record: the first unused sequence number.
	NextSeq uint64 `json:"next_seq,omitempty"`
}

// wal is the live appender over a compacted journal file.
type wal struct {
	f       *os.File
	path    string
	records int64
	bytes   int64
}

func encodeFrame(payload []byte) []byte {
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	return frame
}

// append journals one record, fsyncing when the transition's durability
// matters (submissions, terminal outcomes, cancel requests).
func (w *wal) append(rec *walRecord, sync bool) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobs: encoding wal record: %w", err)
	}
	frame := encodeFrame(payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("jobs: appending wal record: %w", err)
	}
	if sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("jobs: syncing wal: %w", err)
		}
	}
	w.records++
	w.bytes += int64(len(frame))
	return nil
}

func (w *wal) close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// readWAL loads every intact record from the journal at path. A missing
// file is an empty journal; a truncated tail record is dropped (torn
// write — the counted drop is returned so the caller can surface it); a
// checksum or decode failure is a hard error.
func readWAL(path string) (recs []walRecord, torn int, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Shorter than the magic: a journal torn at creation.
			return nil, 1, nil
		}
		return nil, 0, err
	}
	if string(magic[:]) != walMagic {
		return nil, 0, fmt.Errorf("jobs: %s is not a job journal (bad magic %q)", path, magic)
	}

	offset := int64(len(walMagic))
	for i := 0; ; i++ {
		var hdr [8]byte
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return recs, torn, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, torn + 1, nil // torn inside a header
			}
			return nil, 0, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > walMaxRecord {
			return nil, 0, fmt.Errorf(
				"jobs: %s: record %d (offset %d): implausible length %d — journal corrupt, refusing to replay",
				path, i, offset, length)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return recs, torn + 1, nil // torn inside a payload
			}
			return nil, 0, err
		}
		if got := crc32.ChecksumIEEE(payload); got != sum {
			return nil, 0, fmt.Errorf(
				"jobs: %s: record %d (offset %d): checksum mismatch (stored %08x, computed %08x) — journal corrupt, refusing to replay",
				path, i, offset, sum, got)
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, 0, fmt.Errorf(
				"jobs: %s: record %d (offset %d): undecodable record with valid checksum: %v — journal corrupt, refusing to replay",
				path, i, offset, err)
		}
		recs = append(recs, rec)
		offset += int64(8 + length)
	}
}

// rewriteWAL writes a compacted journal (meta + snapshot records) to
// path atomically and returns an appender positioned at its end.
func rewriteWAL(path string, recs []walRecord) (*wal, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &wal{f: f, path: path}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return nil, err
	}
	w.bytes = int64(len(walMagic))
	for i := range recs {
		if err := w.append(&recs[i], false); err != nil {
			f.Close()
			return nil, err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	syncDir(filepath.Dir(path))
	// Reopen for appends at the end of the compacted file.
	af, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w.f = af
	return w, nil
}

// syncDir makes the rename itself durable where the platform allows.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync() // best-effort: some filesystems reject directory fsync
	d.Close()
}
