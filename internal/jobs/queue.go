package jobs

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Config sizes a queue. The zero value gives a memory-only queue with
// the defaults below.
type Config struct {
	// Path is the journal file ("" = memory-only: the full lifecycle
	// works but nothing survives a restart).
	Path string
	// LeaseTTL is how long a worker owns a job between heartbeats
	// (default 10s). A lease that is not renewed within the TTL expires
	// and the job re-queues.
	LeaseTTL time.Duration
	// MaxQueued caps pending (queued-state) jobs; submissions beyond it
	// fail with ErrBacklog — the async analogue of the 429 path
	// (default 256).
	MaxQueued int
	// TenantQuota caps one tenant's live (non-terminal) jobs; beyond it
	// submissions fail with ErrQuota (default 0 = unlimited).
	TenantQuota int
	// RetainDone caps terminal jobs kept for dedup and history; the
	// oldest are evicted beyond it (default 512).
	RetainDone int
	// Clock injects time for tests (default time.Now).
	Clock func() time.Time
	// OnTerminal, when set, observes every live terminal transition
	// (done, failed, cancelled) with a copy of the job. It runs under the
	// queue lock and must not call back into the queue; alad uses it to
	// release operator-registry pins held by by-reference payloads. Boot
	// replay does not fire it — replayed terminal jobs finished in a
	// previous process whose pins died with it.
	OnTerminal func(j *Job)
}

func (c Config) withDefaults() Config {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 256
	}
	if c.RetainDone <= 0 {
		c.RetainDone = 512
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// Stats is a point-in-time snapshot of the queue for metrics surfaces.
// State counts are gauges; the rest are process-lifetime counters
// (journal replay restores jobs, not counters).
type Stats struct {
	Queued    int `json:"queued"`
	Leased    int `json:"leased"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`

	Submitted    int64 `json:"submitted_total"`
	Completed    int64 `json:"completed_total"`
	FailedTotal  int64 `json:"failed_total"`
	CancelledTot int64 `json:"cancelled_total"`
	// LeaseExpired counts re-queues: live expiries plus boot-time
	// reclamation of leases orphaned by a crash.
	LeaseExpired int64 `json:"lease_expired_total"`
	// Replayed counts jobs restored from the journal at boot.
	Replayed int64 `json:"replayed_total"`
	// Deduped counts submissions answered by an existing job.
	Deduped     int64 `json:"dedup_total"`
	Compactions int64 `json:"compactions_total"`
	// TornDropped counts torn tail records dropped during replay.
	TornDropped int64 `json:"torn_dropped_total"`
	WALRecords  int64 `json:"wal_records_total"`
	WALBytes    int64 `json:"wal_bytes"`
}

// Queue is the durable job queue. All methods are safe for concurrent
// use. Create with Open; stop with Close.
type Queue struct {
	cfg Config

	mu   sync.Mutex
	wal  *wal // nil in memory-only mode
	jobs map[string]*Job
	// pending holds queued job IDs per tenant, each FIFO by SubmitSeq;
	// rrOrder/rrNext implement round-robin fairness across tenants
	// (rotation order = tenant first-submission order, never reshuffled,
	// so scheduling is deterministic).
	pending map[string][]string
	rrOrder []string
	rrNext  int
	// live counts non-terminal jobs per tenant (quota enforcement).
	live map[string]int
	// byFP indexes the most recent job per fingerprint (dedup).
	byFP map[uint64]string
	// doneOrder tracks terminal jobs oldest-first for retention.
	doneOrder []string
	nextSeq   uint64
	paused    bool
	closed    bool

	// waiters are long-poll channels resolved at terminal transitions.
	waiters map[string][]chan *Job
	// cancels are live cancellation hooks registered by workers.
	cancels map[string]context.CancelFunc
	// wake nudges idle workers when work arrives (capacity 1).
	wake     chan struct{}
	closedCh chan struct{}

	submitted, completed, failedTot, cancelledTot int64
	leaseExpired, replayed, deduped, compactions  int64
	tornDropped                                   int64
}

// Open loads (or creates) the queue at cfg.Path: replay, lease
// reclamation, then snapshot compaction. A corrupt journal (checksum or
// decode failure anywhere but a torn tail) fails Open.
func Open(cfg Config) (*Queue, error) {
	cfg = cfg.withDefaults()
	q := &Queue{
		cfg:      cfg,
		jobs:     make(map[string]*Job),
		pending:  make(map[string][]string),
		live:     make(map[string]int),
		byFP:     make(map[uint64]string),
		waiters:  make(map[string][]chan *Job),
		cancels:  make(map[string]context.CancelFunc),
		wake:     make(chan struct{}, 1),
		closedCh: make(chan struct{}),
	}
	if cfg.Path == "" {
		return q, nil
	}
	if dir := filepath.Dir(cfg.Path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("jobs: creating journal directory: %w", err)
		}
	}
	recs, torn, err := readWAL(cfg.Path)
	if err != nil {
		return nil, err
	}
	q.tornDropped = int64(torn)
	if err := q.replay(recs); err != nil {
		return nil, err
	}
	w, err := rewriteWAL(cfg.Path, q.snapshotRecords())
	if err != nil {
		return nil, fmt.Errorf("jobs: compacting journal: %w", err)
	}
	q.wal = w
	if len(recs) > 0 {
		q.compactions++
	}
	return q, nil
}

// replay applies journal records in order, then reclaims orphaned
// leases: the process that held every lease is the one that died, so
// leased/running jobs go back to queued (or to cancelled if their
// cancellation was already requested) with attempts preserved.
func (q *Queue) replay(recs []walRecord) error {
	for i := range recs {
		rec := &recs[i]
		if rec.Op == opMeta {
			if rec.NextSeq > q.nextSeq {
				q.nextSeq = rec.NextSeq
			}
			continue
		}
		if err := q.applyLocked(rec); err != nil {
			return fmt.Errorf("jobs: replaying record %d (%s %s): %w", i, rec.Op, rec.ID, err)
		}
		if rec.Seq >= q.nextSeq {
			q.nextSeq = rec.Seq + 1
		}
	}
	q.replayed = int64(len(q.jobs))

	// Reclaim orphaned leases deterministically (submit order).
	var orphaned []*Job
	for _, j := range q.jobs {
		if j.State == StateLeased || j.State == StateRunning {
			orphaned = append(orphaned, j)
		}
	}
	sort.Slice(orphaned, func(a, b int) bool { return orphaned[a].SubmitSeq < orphaned[b].SubmitSeq })
	for _, j := range orphaned {
		op := opRequeue
		if j.CancelRequested {
			op = opCancel
		}
		rec := &walRecord{Seq: q.nextSeq, Op: op, ID: j.ID, NowNs: j.UpdatedNs}
		q.nextSeq++
		if err := q.applyLocked(rec); err != nil {
			return fmt.Errorf("jobs: reclaiming lease of %s: %w", j.ID, err)
		}
		q.leaseExpired++
	}

	// Retention applies across restarts too: a replayed journal may hold
	// more terminal jobs than the configured cap.
	sort.Slice(q.doneOrder, func(a, b int) bool {
		return q.jobs[q.doneOrder[a]].SubmitSeq < q.jobs[q.doneOrder[b]].SubmitSeq
	})
	q.evictDoneLocked()
	return nil
}

// snapshotRecords renders live state as a compact journal: one meta
// record, then every retained job as a snap record in submit order.
func (q *Queue) snapshotRecords() []walRecord {
	all := make([]*Job, 0, len(q.jobs))
	for _, j := range q.jobs {
		all = append(all, j)
	}
	sort.Slice(all, func(a, b int) bool { return all[a].SubmitSeq < all[b].SubmitSeq })
	recs := make([]walRecord, 0, len(all)+1)
	recs = append(recs, walRecord{Op: opMeta, NextSeq: q.nextSeq})
	for _, j := range all {
		recs = append(recs, walRecord{Seq: j.SubmitSeq, Op: opSnap, ID: j.ID, Job: j})
	}
	return recs
}

// applyLocked is the single source of truth for state mutation: live
// operations build a record, apply it, then journal it; replay applies
// the same records. It validates every edge against the state machine.
func (q *Queue) applyLocked(rec *walRecord) error {
	switch rec.Op {
	case opSubmit, opSnap:
		if rec.Job == nil {
			return fmt.Errorf("%s record without job", rec.Op)
		}
		j := rec.Job.clone()
		q.jobs[j.ID] = j
		if j.SubmitSeq >= q.nextSeq {
			q.nextSeq = j.SubmitSeq + 1
		}
		q.noteTenantLocked(j.Tenant)
		if !j.State.Terminal() {
			q.live[j.Tenant]++
		} else {
			q.doneOrder = append(q.doneOrder, j.ID)
		}
		if j.State == StateQueued {
			q.enqueueLocked(j)
		}
		// Last submission wins the fingerprint index (snap replays in
		// submit order, so this matches live history).
		q.byFP[j.Fingerprint] = j.ID
		return nil
	}

	j, ok := q.jobs[rec.ID]
	if !ok {
		return ErrNotFound
	}
	to, ok := map[string]State{
		opLease:   StateLeased,
		opStart:   StateRunning,
		opRequeue: StateQueued,
		opDone:    StateDone,
		opFail:    StateFailed,
		opCancel:  StateCancelled,
	}[rec.Op]
	if rec.Op == opCancelReq {
		j.CancelRequested = true
		j.UpdatedNs = rec.NowNs
		return nil
	}
	if !ok {
		return fmt.Errorf("unknown op %q", rec.Op)
	}
	if !validNext(j.State, to) {
		return fmt.Errorf("%w: %s → %s", ErrBadTransition, j.State, to)
	}
	if j.State == StateQueued {
		q.dequeueLocked(j)
	}
	from := j.State
	j.State = to
	j.UpdatedNs = rec.NowNs
	switch rec.Op {
	case opLease:
		j.LeaseOwner = rec.Owner
		j.LeaseExpiryNs = rec.ExpiryNs
		j.Attempts++
	case opRequeue:
		j.LeaseOwner = ""
		j.LeaseExpiryNs = 0
		q.enqueueLocked(j)
	case opDone:
		j.Result = rec.Result
		j.LeaseOwner = ""
		j.LeaseExpiryNs = 0
	case opFail, opCancel:
		j.ErrCode = rec.ErrCode
		j.ErrMsg = rec.ErrMsg
		j.LeaseOwner = ""
		j.LeaseExpiryNs = 0
	}
	if to.Terminal() && !from.Terminal() {
		q.live[j.Tenant]--
		q.doneOrder = append(q.doneOrder, j.ID)
	}
	return nil
}

func (q *Queue) noteTenantLocked(tenant string) {
	if _, seen := q.pending[tenant]; !seen {
		q.pending[tenant] = nil
		q.rrOrder = append(q.rrOrder, tenant)
	}
}

func (q *Queue) enqueueLocked(j *Job) {
	q.noteTenantLocked(j.Tenant)
	ids := q.pending[j.Tenant]
	// Insert by SubmitSeq: re-queues land back at their original
	// position, so lease expiry never reorders a tenant's backlog.
	at := sort.Search(len(ids), func(i int) bool {
		return q.jobs[ids[i]].SubmitSeq > j.SubmitSeq
	})
	ids = append(ids, "")
	copy(ids[at+1:], ids[at:])
	ids[at] = j.ID
	q.pending[j.Tenant] = ids
}

func (q *Queue) dequeueLocked(j *Job) {
	ids := q.pending[j.Tenant]
	for i, id := range ids {
		if id == j.ID {
			q.pending[j.Tenant] = append(ids[:i], ids[i+1:]...)
			return
		}
	}
}

func (q *Queue) queuedCountLocked() int {
	n := 0
	for _, ids := range q.pending {
		n += len(ids)
	}
	return n
}

// commit applies a record and journals it. sync=true forces an fsync
// (submissions, terminal outcomes, cancel requests).
func (q *Queue) commit(rec *walRecord, sync bool) error {
	if err := q.applyLocked(rec); err != nil {
		return err
	}
	if q.wal != nil {
		if err := q.wal.append(rec, sync); err != nil {
			return err
		}
	}
	return nil
}

// wakeWorkers nudges one idle worker without blocking.
func (q *Queue) wakeWorkers() {
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// Wake is the worker idle-wait channel: readable when work may have
// arrived.
func (q *Queue) Wake() <-chan struct{} { return q.wake }

// Closed is closed when the queue shuts down.
func (q *Queue) Closed() <-chan struct{} { return q.closedCh }

// Submit appends a new job. A submission whose fingerprint matches a
// live or completed job of the same kind is answered by that job (its
// copy has Deduped set) without enqueueing anything — completed results
// replay from the store instead of re-solving.
func (q *Queue) Submit(tenant, kind string, fingerprint uint64, payload []byte) (*Job, error) {
	return q.SubmitAffinity(tenant, kind, fingerprint, 0, payload)
}

// SubmitAffinity is Submit with a co-scheduling affinity (see
// Job.Affinity): workers drain queued same-affinity jobs together via
// LeaseMatching.
func (q *Queue) SubmitAffinity(tenant, kind string, fingerprint, affinity uint64, payload []byte) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	if id, ok := q.byFP[fingerprint]; ok {
		if j, ok := q.jobs[id]; ok && j.Kind == kind && j.State != StateFailed && j.State != StateCancelled {
			q.deduped++
			c := j.clone()
			c.Deduped = true
			return c, nil
		}
	}
	if q.queuedCountLocked() >= q.cfg.MaxQueued {
		return nil, ErrBacklog
	}
	if q.cfg.TenantQuota > 0 && q.live[tenant] >= q.cfg.TenantQuota {
		return nil, ErrQuota
	}
	now := q.cfg.Clock().UnixNano()
	seq := q.nextSeq
	j := &Job{
		ID:          fmt.Sprintf("j-%08x", seq),
		Tenant:      tenant,
		Kind:        kind,
		Fingerprint: fingerprint,
		Affinity:    affinity,
		Payload:     payload,
		State:       StateQueued,
		SubmitSeq:   seq,
		SubmittedNs: now,
		UpdatedNs:   now,
	}
	rec := &walRecord{Seq: seq, Op: opSubmit, NowNs: now, ID: j.ID, Job: j}
	q.nextSeq = seq + 1
	if err := q.commit(rec, true); err != nil {
		return nil, err
	}
	q.submitted++
	q.wakeWorkers()
	return j.clone(), nil
}

// Lease hands the next runnable job to owner, or nil when the queue is
// empty or paused. Scheduling is round-robin across tenants, FIFO by
// submit order within one.
func (q *Queue) Lease(owner string) *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.paused {
		return nil
	}
	j := q.pickNextLocked()
	if j == nil {
		return nil
	}
	return q.leaseLocked(j, owner)
}

// leaseLocked journals and applies one lease transition for a queued job
// already picked under q.mu.
func (q *Queue) leaseLocked(j *Job, owner string) *Job {
	now := q.cfg.Clock()
	rec := &walRecord{
		Seq: q.nextSeq, Op: opLease, NowNs: now.UnixNano(), ID: j.ID,
		Owner: owner, ExpiryNs: now.Add(q.cfg.LeaseTTL).UnixNano(),
	}
	q.nextSeq++
	if err := q.commit(rec, false); err != nil {
		return nil
	}
	return j.clone()
}

// LeaseMatching hands owner up to max queued jobs sharing the given
// non-zero affinity, earliest submissions first across every tenant —
// the fingerprint-sticky half of wave scheduling: a worker that just
// leased a job calls this to drain its operator-mates so their solves
// run concurrently and coalesce into one lane wave. Returns nil when
// nothing matches (or the queue is paused/closed).
func (q *Queue) LeaseMatching(owner string, affinity uint64, max int) []*Job {
	if affinity == 0 || max <= 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.paused {
		return nil
	}
	var out []*Job
	for len(out) < max {
		var pick *Job
		for _, ids := range q.pending {
			// FIFO within a tenant: the first match is that tenant's
			// earliest; the global earliest wins across tenants.
			for _, id := range ids {
				if j := q.jobs[id]; j.Affinity == affinity {
					if pick == nil || j.SubmitSeq < pick.SubmitSeq {
						pick = j
					}
					break
				}
			}
		}
		if pick == nil {
			break
		}
		c := q.leaseLocked(pick, owner)
		if c == nil {
			break
		}
		out = append(out, c)
	}
	return out
}

func (q *Queue) pickNextLocked() *Job {
	for i := 0; i < len(q.rrOrder); i++ {
		at := (q.rrNext + i) % len(q.rrOrder)
		if ids := q.pending[q.rrOrder[at]]; len(ids) > 0 {
			q.rrNext = at + 1
			return q.jobs[ids[0]]
		}
	}
	return nil
}

// Start moves a leased job to running.
func (q *Queue) Start(id, owner string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.ownedLocked(id, owner)
	if err != nil {
		return err
	}
	rec := &walRecord{Seq: q.nextSeq, Op: opStart, NowNs: q.cfg.Clock().UnixNano(), ID: j.ID}
	q.nextSeq++
	return q.commit(rec, false)
}

// Renew heartbeats a lease, pushing its expiry out one TTL. Renewals
// are process-local: a crash reclaims every lease at boot regardless.
func (q *Queue) Renew(id, owner string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.ownedLocked(id, owner)
	if err != nil {
		return err
	}
	j.LeaseExpiryNs = q.cfg.Clock().Add(q.cfg.LeaseTTL).UnixNano()
	return nil
}

func (q *Queue) ownedLocked(id, owner string) (*Job, error) {
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	if j.State != StateLeased && j.State != StateRunning {
		return nil, fmt.Errorf("%w: job is %s", ErrNotOwner, j.State)
	}
	if j.LeaseOwner != owner {
		return nil, ErrNotOwner
	}
	return j, nil
}

// Complete records a job's result. A stale owner (lease expired and the
// job moved on) gets ErrNotOwner and its result is discarded — the
// current lease holder's answer is the one that counts.
func (q *Queue) Complete(id, owner string, result []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.ownedLocked(id, owner)
	if err != nil {
		return err
	}
	rec := &walRecord{Seq: q.nextSeq, Op: opDone, NowNs: q.cfg.Clock().UnixNano(), ID: j.ID, Result: result}
	q.nextSeq++
	if err := q.commit(rec, true); err != nil {
		return err
	}
	q.completed++
	q.finishLocked(j)
	return nil
}

// Fail records a job's failure — or its cancellation, when the failure
// is the worker honoring a cancel request.
func (q *Queue) Fail(id, owner, code, msg string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, err := q.ownedLocked(id, owner)
	if err != nil {
		return err
	}
	op := opFail
	if j.CancelRequested {
		op = opCancel
	}
	rec := &walRecord{Seq: q.nextSeq, Op: op, NowNs: q.cfg.Clock().UnixNano(), ID: j.ID, ErrCode: code, ErrMsg: msg}
	q.nextSeq++
	if err := q.commit(rec, true); err != nil {
		return err
	}
	if op == opCancel {
		q.cancelledTot++
	} else {
		q.failedTot++
	}
	q.finishLocked(j)
	return nil
}

// Cancel asks for a job's cancellation. Queued jobs cancel immediately;
// leased/running jobs get their worker's context cancelled and reach
// the cancelled state when the worker acknowledges (or, after a crash,
// when boot-time recovery sees the request). Terminal jobs are
// returned unchanged.
func (q *Queue) Cancel(id string) (*Job, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	now := q.cfg.Clock().UnixNano()
	switch j.State {
	case StateQueued:
		rec := &walRecord{Seq: q.nextSeq, Op: opCancel, NowNs: now, ID: j.ID, ErrCode: "cancelled", ErrMsg: "cancelled before execution"}
		q.nextSeq++
		if err := q.commit(rec, true); err != nil {
			return nil, err
		}
		q.cancelledTot++
		q.finishLocked(j)
	case StateLeased, StateRunning:
		if !j.CancelRequested {
			rec := &walRecord{Seq: q.nextSeq, Op: opCancelReq, NowNs: now, ID: j.ID}
			q.nextSeq++
			if err := q.commit(rec, true); err != nil {
				return nil, err
			}
		}
		if cancel, ok := q.cancels[id]; ok {
			cancel()
		}
	}
	return j.clone(), nil
}

// finishLocked runs terminal-transition bookkeeping: waiter resolution,
// the terminal observer, and retention eviction.
func (q *Queue) finishLocked(j *Job) {
	if chans := q.waiters[j.ID]; len(chans) > 0 {
		for _, ch := range chans {
			ch <- j.clone()
		}
		delete(q.waiters, j.ID)
	}
	if q.cfg.OnTerminal != nil {
		q.cfg.OnTerminal(j.clone())
	}
	q.evictDoneLocked()
}

// evictDoneLocked enforces terminal-job retention, oldest first.
func (q *Queue) evictDoneLocked() {
	for len(q.doneOrder) > q.cfg.RetainDone {
		victim := q.doneOrder[0]
		q.doneOrder = q.doneOrder[1:]
		if old, ok := q.jobs[victim]; ok {
			if q.byFP[old.Fingerprint] == victim {
				delete(q.byFP, old.Fingerprint)
			}
			delete(q.jobs, victim)
		}
	}
}

// ExpireLeases re-queues every leased/running job whose lease expiry
// has passed (its worker went silent). Returns how many re-queued.
func (q *Queue) ExpireLeases() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.cfg.Clock().UnixNano()
	var expired []*Job
	for _, j := range q.jobs {
		if (j.State == StateLeased || j.State == StateRunning) && j.LeaseExpiryNs < now {
			expired = append(expired, j)
		}
	}
	sort.Slice(expired, func(a, b int) bool { return expired[a].SubmitSeq < expired[b].SubmitSeq })
	n := 0
	for _, j := range expired {
		rec := &walRecord{Seq: q.nextSeq, Op: opRequeue, NowNs: now, ID: j.ID}
		op := opRequeue
		if j.CancelRequested {
			op = opCancel
			rec = &walRecord{Seq: q.nextSeq, Op: opCancel, NowNs: now, ID: j.ID,
				ErrCode: "cancelled", ErrMsg: "cancelled while lease expired"}
		}
		q.nextSeq++
		if err := q.commit(rec, false); err != nil {
			continue
		}
		q.leaseExpired++
		if op == opCancel {
			q.cancelledTot++
			q.finishLocked(j)
		}
		n++
	}
	if n > 0 {
		q.wakeWorkers()
	}
	return n
}

// Get returns a copy of one job.
func (q *Queue) Get(id string) (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	j, ok := q.jobs[id]
	if !ok {
		return nil, false
	}
	return j.clone(), true
}

// List returns copies of every job matching the filters (zero values
// match everything), newest submissions first.
func (q *Queue) List(tenant string, state State) []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*Job
	for _, j := range q.jobs {
		if tenant != "" && j.Tenant != tenant {
			continue
		}
		if state != "" && j.State != state {
			continue
		}
		out = append(out, j.clone())
	}
	sort.Slice(out, func(a, b int) bool { return out[a].SubmitSeq > out[b].SubmitSeq })
	return out
}

// Wait blocks until the job reaches a terminal state, the context ends,
// or the queue closes — the long-poll primitive behind
// GET /v1/jobs/{id}?wait=....
func (q *Queue) Wait(ctx context.Context, id string) (*Job, error) {
	q.mu.Lock()
	j, ok := q.jobs[id]
	if !ok {
		q.mu.Unlock()
		return nil, ErrNotFound
	}
	if j.State.Terminal() {
		c := j.clone()
		q.mu.Unlock()
		return c, nil
	}
	ch := make(chan *Job, 1)
	q.waiters[id] = append(q.waiters[id], ch)
	q.mu.Unlock()
	select {
	case j := <-ch:
		return j, nil
	case <-ctx.Done():
		q.mu.Lock()
		chans := q.waiters[id]
		for i, c := range chans {
			if c == ch {
				q.waiters[id] = append(chans[:i], chans[i+1:]...)
				break
			}
		}
		q.mu.Unlock()
		return nil, ctx.Err()
	case <-q.closedCh:
		return nil, ErrClosed
	}
}

// registerCancel installs a worker's live cancellation hook.
func (q *Queue) registerCancel(id string, cancel context.CancelFunc) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.cancels[id] = cancel
	// A cancel that raced the lease still lands.
	if j, ok := q.jobs[id]; ok && j.CancelRequested {
		cancel()
	}
}

func (q *Queue) unregisterCancel(id string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.cancels, id)
}

// abortRunning cancels every registered worker context (drain-deadline
// enforcement).
func (q *Queue) abortRunning() {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, cancel := range q.cancels {
		cancel()
	}
}

// Pause stops leasing; queued jobs stay queued (and persisted). The
// first step of a graceful drain.
func (q *Queue) Pause() {
	q.mu.Lock()
	q.paused = true
	q.mu.Unlock()
}

// InFlight counts leased plus running jobs.
func (q *Queue) InFlight() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, j := range q.jobs {
		if j.State == StateLeased || j.State == StateRunning {
			n++
		}
	}
	return n
}

// Drain pauses leasing and waits for in-flight jobs to finish (or ctx
// to expire). It returns how many queued jobs remain persisted for the
// next boot.
func (q *Queue) Drain(ctx context.Context) (queued int, err error) {
	q.Pause()
	tick := time.NewTicker(20 * time.Millisecond)
	defer tick.Stop()
	for q.InFlight() > 0 {
		select {
		case <-ctx.Done():
			q.mu.Lock()
			n := q.queuedCountLocked()
			q.mu.Unlock()
			return n, ctx.Err()
		case <-tick.C:
		}
	}
	q.mu.Lock()
	n := q.queuedCountLocked()
	q.mu.Unlock()
	return n, nil
}

// Close shuts the queue down: waiters resolve with ErrClosed and the
// journal is fsynced shut. Queued jobs persist for the next Open.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	close(q.closedCh)
	if q.wal != nil {
		return q.wal.close()
	}
	return nil
}

// Stats snapshots the queue for the metrics surface.
func (q *Queue) Stats() Stats {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := Stats{
		Submitted:    q.submitted,
		Completed:    q.completed,
		FailedTotal:  q.failedTot,
		CancelledTot: q.cancelledTot,
		LeaseExpired: q.leaseExpired,
		Replayed:     q.replayed,
		Deduped:      q.deduped,
		Compactions:  q.compactions,
		TornDropped:  q.tornDropped,
	}
	for _, j := range q.jobs {
		switch j.State {
		case StateQueued:
			s.Queued++
		case StateLeased:
			s.Leased++
		case StateRunning:
			s.Running++
		case StateDone:
			s.Done++
		case StateFailed:
			s.Failed++
		case StateCancelled:
			s.Cancelled++
		}
	}
	if q.wal != nil {
		s.WALRecords = q.wal.records
		s.WALBytes = q.wal.bytes
	}
	return s
}
