package analogacc_test

import (
	"math"
	"os"
	"testing"

	"analogacc"
)

// Benchmarks: one per paper table/figure (wrapping the reproduction
// harness), plus microbenchmarks of the load-bearing kernels. By default
// the per-figure benchmarks run at reduced sweep sizes so `go test
// -bench=.` finishes in minutes; set ALABENCH_FULL=1 to run the paper's
// full ranges (as `cmd/alabench -e all` does).

func benchConfig() analogacc.ExperimentConfig {
	return analogacc.ExperimentConfig{Quick: os.Getenv("ALABENCH_FULL") == ""}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := analogacc.ExperimentByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		table, err := e.Run(cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

// --- One benchmark per paper artifact ---

func BenchmarkTable1ISA(b *testing.B)           { runExperiment(b, "table1") }
func BenchmarkTable2Components(b *testing.B)    { runExperiment(b, "table2") }
func BenchmarkTable3Scaling(b *testing.B)       { runExperiment(b, "table3") }
func BenchmarkFig7Convergence(b *testing.B)     { runExperiment(b, "fig7") }
func BenchmarkFig8TimeToSolution(b *testing.B)  { runExperiment(b, "fig8") }
func BenchmarkFig9Bandwidth(b *testing.B)       { runExperiment(b, "fig9") }
func BenchmarkFig10Power(b *testing.B)          { runExperiment(b, "fig10") }
func BenchmarkFig11Area(b *testing.B)           { runExperiment(b, "fig11") }
func BenchmarkFig12Energy(b *testing.B)         { runExperiment(b, "fig12") }
func BenchmarkADCResolution(b *testing.B)       { runExperiment(b, "adcres") }
func BenchmarkCalibrationAblation(b *testing.B) { runExperiment(b, "calib") }
func BenchmarkMultigridAnalog(b *testing.B)     { runExperiment(b, "multigrid") }
func BenchmarkDecomposition(b *testing.B)       { runExperiment(b, "decomp") }
func BenchmarkNoiseAblation(b *testing.B)       { runExperiment(b, "noise") }
func BenchmarkParallelFarm(b *testing.B)        { runExperiment(b, "parallel") }
func BenchmarkDDAComparison(b *testing.B)       { runExperiment(b, "dda") }

// --- Microbenchmarks of the kernels behind those numbers ---

// BenchmarkDigitalCGStencil measures the paper's digital baseline: one
// matrix-free stencil CG solve at the 1/256 equal-precision stop.
func BenchmarkDigitalCGStencil(b *testing.B) {
	prob, err := analogacc.Poisson(2, 16)
	if err != nil {
		b.Fatal(err)
	}
	st := analogacc.NewPoissonStencil(prob.Grid)
	tol := prob.Exact.NormInf() / 256
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analogacc.CG(st, prob.B, analogacc.DigitalOptions{
			Criterion: analogacc.DeltaInf, Tol: tol,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalogSolve2x2 measures a full host-driver solve of the
// Figure 5 system on the simulated prototype, including compilation,
// configuration over the ISA, settling, and readout.
func BenchmarkAnalogSolve2x2(b *testing.B) {
	a := analogacc.MustCSR(2, []analogacc.COOEntry{
		{Row: 0, Col: 0, Val: 0.8}, {Row: 0, Col: 1, Val: 0.2},
		{Row: 1, Col: 0, Val: 0.2}, {Row: 1, Col: 1, Val: 0.6},
	})
	rhs := analogacc.VectorOf(0.5, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, _, err := analogacc.NewSimulated(analogacc.PrototypeChip())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := acc.Solve(a, rhs, analogacc.SolveOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAlg2Refinement measures Algorithm 2 driving an 8-bit chip to
// 1e-9 precision.
func BenchmarkAlg2Refinement(b *testing.B) {
	a := analogacc.MustCSR(2, []analogacc.COOEntry{
		{Row: 0, Col: 0, Val: 0.8}, {Row: 0, Col: 1, Val: 0.2},
		{Row: 1, Col: 0, Val: 0.2}, {Row: 1, Col: 1, Val: 0.6},
	})
	rhs := analogacc.VectorOf(0.5, 0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, _, err := analogacc.NewSimulated(analogacc.PrototypeChip())
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := acc.SolveRefined(a, rhs, analogacc.SolveOptions{Tolerance: 1e-9}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChipSettle measures the behavioural circuit engine settling a
// 64-variable Poisson system (the inner loop of every figure-8 point).
func BenchmarkChipSettle(b *testing.B) {
	prob, err := analogacc.Poisson(2, 8)
	if err != nil {
		b.Fatal(err)
	}
	spec := analogacc.ScaledChip(prob.Grid.N(), 8, 20e3, 6)
	spec.FanoutsPerMB = 3
	hint := prob.Exact.NormInf() * 1.1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, _, err := analogacc.NewSimulated(spec)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := acc.Solve(prob.A, prob.B, analogacc.SolveOptions{SigmaHint: hint}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStencilApply measures the matrix-free operator kernel.
func BenchmarkStencilApply(b *testing.B) {
	g, err := analogacc.NewGrid(2, 64)
	if err != nil {
		b.Fatal(err)
	}
	st := analogacc.NewPoissonStencil(g)
	x := analogacc.NewVector(g.N())
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	dst := analogacc.NewVector(g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Apply(dst, x)
	}
}

// BenchmarkMultigridVCycle measures a full digital multigrid solve, the
// Section IV-A outer structure the accelerator plugs into.
func BenchmarkMultigridVCycle(b *testing.B) {
	prob, err := analogacc.Poisson(2, 63)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg, err := analogacc.NewMultigrid(prob.Grid, analogacc.MGOptions{Tolerance: 1e-8})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := mg.Solve(prob.B); err != nil {
			b.Fatal(err)
		}
	}
}
