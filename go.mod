module analogacc

go 1.22
