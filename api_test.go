package analogacc_test

import (
	"math"
	"testing"

	"analogacc"
)

// These tests exercise the public facade end-to-end, the way a downstream
// user would: they are intentionally written only against exported API.

func eq2() (*analogacc.CSR, analogacc.Vector) {
	a := analogacc.MustCSR(2, []analogacc.COOEntry{
		{Row: 0, Col: 0, Val: 0.8}, {Row: 0, Col: 1, Val: 0.2},
		{Row: 1, Col: 0, Val: 0.2}, {Row: 1, Col: 1, Val: 0.6},
	})
	return a, analogacc.VectorOf(0.5, 0.3)
}

func TestPublicQuickstartFlow(t *testing.T) {
	acc, chipDev, err := analogacc.NewSimulated(analogacc.PrototypeChip())
	if err != nil {
		t.Fatal(err)
	}
	if chipDev == nil || chipDev.Spec().Macroblocks != 4 {
		t.Fatal("chip handle malformed")
	}
	a, b := eq2()
	want, err := analogacc.SolveDirectCSR(a, b)
	if err != nil {
		t.Fatal(err)
	}
	u, stats, err := acc.SolveRefined(a, b, analogacc.SolveOptions{Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(want, 1e-6) {
		t.Fatalf("u=%v want %v", u, want)
	}
	if stats.Refinements == 0 || stats.AnalogTime <= 0 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestPublicDigitalBaselines(t *testing.T) {
	prob, err := analogacc.Poisson(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := analogacc.CG(prob.A, prob.B, analogacc.DigitalOptions{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if !res.X.Equal(prob.Exact, 1e-7) {
		t.Fatal("CG wrong through facade")
	}
	pre, err := analogacc.NewSSORPreconditioner(prob.A, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := analogacc.PCG(prob.A, pre, prob.B, analogacc.DigitalOptions{Tol: 1e-11})
	if err != nil {
		t.Fatal(err)
	}
	if pres.Iterations >= res.Iterations {
		t.Fatalf("PCG (%d) not faster than CG (%d)", pres.Iterations, res.Iterations)
	}
	// The matrix-free stencil path.
	st := analogacc.NewPoissonStencil(prob.Grid)
	sres, err := analogacc.CG(st, prob.B, analogacc.DigitalOptions{Tol: 1e-11})
	if err != nil || !sres.X.Equal(res.X, 1e-7) {
		t.Fatalf("stencil CG disagrees: %v", err)
	}
}

func TestPublicMultigridWithAnalogCoarse(t *testing.T) {
	prob, err := analogacc.Poisson(2, 15)
	if err != nil {
		t.Fatal(err)
	}
	acc, _, err := analogacc.NewSimulated(analogacc.ScaledChip(9, 8, 20e3, 6))
	if err != nil {
		t.Fatal(err)
	}
	var sess *analogacc.Session
	coarse := func(a *analogacc.CSR, b analogacc.Vector) (analogacc.Vector, error) {
		if sess == nil {
			s, err := acc.BeginSession(a)
			if err != nil {
				return nil, err
			}
			sess = s
		}
		u, _, err := sess.SolveFor(b, analogacc.SolveOptions{})
		return u, err
	}
	mg, err := analogacc.NewMultigrid(prob.Grid, analogacc.MGOptions{Tolerance: 1e-8, Coarse: coarse})
	if err != nil {
		t.Fatal(err)
	}
	u, stats, err := mg.Solve(prob.B)
	if err != nil {
		t.Fatal(err)
	}
	if !u.Equal(prob.Exact, 1e-5) {
		t.Fatalf("error %v", prob.L2Error(u))
	}
	if stats.CoarseSolves == 0 || acc.Runs() == 0 {
		t.Fatal("analog coarse solver never ran")
	}
	// W-cycle and FMG variants also work through the facade.
	if _, _, err := mg.SolveW(prob.B); err != nil {
		t.Fatal(err)
	}
	if _, _, err := mg.SolveFMG(prob.B); err != nil {
		t.Fatal(err)
	}
}

func TestPublicFarm(t *testing.T) {
	prob, err := analogacc.Poisson(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *analogacc.Accelerator {
		acc, _, err := analogacc.NewSimulated(analogacc.ScaledChip(4, 12, 20e3, 6))
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	farm, err := analogacc.NewFarm(mk(), mk())
	if err != nil {
		t.Fatal(err)
	}
	x, stats, err := farm.SolveDecomposedParallel(prob.A, prob.B, analogacc.DecomposeOptions{
		BlockSize: 4, OuterTolerance: 1e-4, Inner: analogacc.SolveOptions{Tolerance: 1e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !x.Equal(prob.Exact, prob.Exact.NormInf()*0.01+1e-4) {
		t.Fatalf("farm error %v", prob.L2Error(x))
	}
	if stats.Chips != 2 {
		t.Fatalf("stats %+v", stats)
	}
}

func TestPublicODEAndNewton(t *testing.T) {
	spec := analogacc.PrototypeChip()
	spec.ADCBits = 12
	spec.DACBits = 12
	acc, _, err := analogacc.NewSimulated(spec)
	if err != nil {
		t.Fatal(err)
	}
	m := analogacc.MustCSR(1, []analogacc.COOEntry{{Row: 0, Col: 0, Val: -1}})
	traj, err := acc.SolveODE(m, analogacc.VectorOf(0), analogacc.VectorOf(0.9), analogacc.ODEOptions{Duration: 2, SamplePoints: 8})
	if err != nil {
		t.Fatal(err)
	}
	last := traj.States[len(traj.States)-1][0]
	if math.Abs(last-0.9*math.Exp(-2)) > 0.01 {
		t.Fatalf("decay end %v", last)
	}

	bratu, err := analogacc.NewBratu(1, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	accN, _, err := analogacc.NewSimulated(analogacc.ScaledChip(6, 12, 20e3, 4))
	if err != nil {
		t.Fatal(err)
	}
	u, nst, err := accN.SolveNonlinear(bratu, analogacc.NewVector(6), analogacc.NewtonOptions{Tolerance: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	f := analogacc.NewVector(6)
	bratu.Eval(f, u)
	if f.NormInf() > 1e-7 || nst.Iterations == 0 {
		t.Fatalf("Newton ‖F‖=%v stats %+v", f.NormInf(), nst)
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	all := analogacc.Experiments()
	if len(all) < 15 {
		t.Fatalf("%d experiments", len(all))
	}
	e, ok := analogacc.ExperimentByID("table2")
	if !ok {
		t.Fatal("table2 missing")
	}
	tbl, err := e.Run(analogacc.ExperimentConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != "table2" || len(tbl.Rows) == 0 {
		t.Fatal("table2 empty")
	}
}

func TestPublicModelAnchors(t *testing.T) {
	comp := analogacc.MacroblockComplement()
	d := analogacc.Design{BandwidthHz: 20e3}
	if a := d.Area(650, comp); a < 120 || a > 170 {
		t.Fatalf("650-integrator area %v", a)
	}
	if len(analogacc.PaperBandwidths()) != 4 {
		t.Fatal("bandwidth list")
	}
	if len(analogacc.TableII()) != 5 {
		t.Fatal("TableII")
	}
}
