// Command alasolve solves a system of linear equations A·u = b read from a
// simple triplet file (see internal/la.ReadSystem) on a chosen backend:
// the simulated analog accelerator (one-shot or with Algorithm 2
// refinement), any of the digital iterative baselines, or dense LU.
//
// Usage:
//
//	alasolve -f system.txt -backend analog-refined -tol 1e-8
//	alasolve -f poisson.txt -backend cg
//	echo "n 1
//	a 0 0 0.5
//	b 0 0.25" | alasolve -backend analog
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"analogacc"
	"analogacc/internal/cli"
	"analogacc/internal/la"
	"analogacc/internal/solvers"
)

func main() {
	var (
		file      = flag.String("f", "", "system file (default: stdin)")
		format    = flag.String("format", "triplet", "triplet (A and b in one file) | mm (MatrixMarket matrix; see -rhs)")
		rhsFile   = flag.String("rhs", "", "with -format mm: file of right-hand-side values, one per line (default: all ones)")
		backend   = flag.String("backend", "analog-refined", "analog | analog-refined | cg | steepest | sor | gs | jacobi | direct")
		tol       = flag.Float64("tol", 1e-8, "convergence / refinement tolerance")
		adcBits   = flag.Int("adc-bits", 12, "analog chip converter resolution")
		bandwidth = flag.Float64("bandwidth", 20e3, "analog bandwidth in Hz")
		calibrate = flag.Bool("calibrate", false, "run the chip init calibration first")
		quiet     = flag.Bool("q", false, "print only the solution values")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		in = f
	}
	var (
		a *la.CSR
		b la.Vector
	)
	switch *format {
	case "triplet":
		var err error
		a, b, err = la.ReadSystem(in)
		if err != nil {
			fail("reading system: %v", err)
		}
	case "mm":
		var err error
		a, err = la.ReadMatrixMarket(in)
		if err != nil {
			fail("reading MatrixMarket: %v", err)
		}
		b = la.Constant(a.Dim(), 1)
		if *rhsFile != "" {
			b, err = readRHS(*rhsFile, a.Dim())
			if err != nil {
				fail("%v", err)
			}
		}
	default:
		fail("unknown format %q", *format)
	}

	var (
		u     la.Vector
		extra string
	)
	switch *backend {
	case "analog", "analog-refined":
		n := a.Dim()
		spec := analogacc.ScaledChip(n, *adcBits, *bandwidth, a.MaxRowNNZ()+1)
		spec.FanoutsPerMB = (a.MaxRowNNZ()+3)/3 + 1
		acc, _, err := analogacc.NewSimulated(spec)
		if err != nil {
			fail("building chip: %v", err)
		}
		opt := analogacc.SolveOptions{Tolerance: *tol, Calibrate: *calibrate}
		var stats analogacc.Stats
		if *backend == "analog" {
			u, stats, err = acc.Solve(a, b, opt)
		} else {
			u, stats, err = acc.SolveRefined(a, b, opt)
		}
		if err != nil {
			fail("analog solve: %v", err)
		}
		extra = fmt.Sprintf("analog time %.3e s, %d runs, %d refinements, %d rescales, value scale S=%.4g",
			stats.AnalogTime, stats.Runs, stats.Refinements, stats.Rescales, stats.Scaling.S)
	case "direct":
		var err error
		u, err = solvers.SolveCSRDirect(a, b)
		if err != nil {
			fail("direct solve: %v", err)
		}
		extra = "dense LU with partial pivoting"
	default:
		res, err := solvers.Solve(solvers.Name(*backend), a, b, solvers.Options{Tol: *tol})
		if err != nil {
			fail("%s: %v", *backend, err)
		}
		u = res.X
		extra = fmt.Sprintf("%d iterations, %d MACs", res.Iterations, res.MACs)
	}

	for i, v := range u {
		if *quiet {
			fmt.Printf("%.12g\n", v)
		} else {
			fmt.Printf("u[%d] = %.12g\n", i, v)
		}
	}
	if !*quiet {
		fmt.Printf("# backend: %s (%s)\n", *backend, extra)
		fmt.Printf("# relative residual: %.3e\n", la.RelativeResidual(a, u, b))
	}
}

// readRHS loads one float per non-empty line.
func readRHS(path string, n int) (la.Vector, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return cli.ParseRHS(string(raw), n)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "alasolve: "+format+"\n", args...)
	os.Exit(1)
}
