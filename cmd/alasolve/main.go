// Command alasolve solves a system of linear equations A·u = b read from a
// simple triplet file (see internal/la.ReadSystem) on a chosen backend:
// the simulated analog accelerator (one-shot or with Algorithm 2
// refinement), any of the digital iterative baselines, or dense LU.
// With -server it submits the solve to a running alad daemon instead of
// solving locally, using the same request schema.
//
// Usage:
//
//	alasolve -f system.txt -backend analog-refined -tol 1e-8
//	alasolve -f poisson.txt -backend cg
//	alasolve -f system.txt -server localhost:8080
//	alasolve -f system.txt -server host1:8080,host2:8080,host3:8080  # federation: owner-first routing
//	alasolve -f system.txt -server localhost:8080 -async        # prints a job ID
//	alasolve -server localhost:8080 -job j-00000001 -wait       # blocks for the result
//	echo "n 1
//	a 0 0 0.5
//	b 0 0.25" | alasolve -backend analog
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"analogacc/internal/cli"
	"analogacc/internal/federation"
	"analogacc/internal/la"
	"analogacc/internal/serve"
)

func main() {
	var (
		file      = flag.String("f", "", "system file (default: stdin)")
		format    = flag.String("format", "triplet", "triplet (A and b in one file) | mm (MatrixMarket matrix; see -rhs)")
		rhsFile   = flag.String("rhs", "", "with -format mm: file of right-hand-side values, one per line (default: all ones)")
		batchFile = flag.String("rhs-file", "", "batch mode: file of right-hand sides, one per line (n whitespace-separated values); the matrix is programmed once and every rhs solves on it")
		backend   = flag.String("backend", "analog-refined", cli.BackendUsage())
		tol       = flag.Float64("tol", 1e-8, "convergence / refinement tolerance")
		adcBits   = flag.Int("adc-bits", 12, "analog chip converter resolution")
		bandwidth = flag.Float64("bandwidth", 20e3, "analog bandwidth in Hz")
		calibrate = flag.Bool("calibrate", false, "run the chip init calibration first")
		engine    = flag.String("engine", "", "simulation kernel for local analog backends: auto | interpreter | compiled | fused (default auto)")
		maxLanes  = flag.Int("max-lanes", 0, "batch mode: cap on lane-parallel right-hand sides per wave (0 = device limit, 1 = sequential); bit-identical at any width")
		jobs      = flag.Int("j", 0, "decomposed backend: chips to fan block solves out over (default: one per block; local solves build max(j,2) chips)")
		blockSize = flag.Int("block", 0, "decomposed backend: variables per block (default: auto)")
		server    = flag.String("server", "", "alad daemon address(es), comma-separated: submit the solve remotely instead of solving in-process; with a federation node list, solves go to the fingerprint's owner node first and fail over down the rank")
		conc      = flag.Int("concurrency", 1, "with -server: fire N concurrent copies of this solve, demonstrating the daemon's wave coalescer; each answer prints its coalesced=<bool> wave_lanes=<n> provenance")
		deadline  = flag.Duration("deadline", 0, "with -server: per-request solve deadline (default: server's)")
		async     = flag.Bool("async", false, "with -server: submit as a durable background job and print its ID instead of waiting inline (add -wait to block for the result)")
		wait      = flag.Bool("wait", false, "with -async or -job: block until the job is terminal and print its result")
		jobID     = flag.String("job", "", "with -server: fetch (or with -wait, wait for) an existing job by ID instead of submitting")
		tenant    = flag.String("tenant", "", "with -server: tenant label for async job scheduling and quotas")
		retries   = flag.Int("retries", 2, "with -server: times a busy (429) answer is retried with jittered backoff honoring Retry-After")
		quiet     = flag.Bool("q", false, "print only the solution values")
	)
	flag.Parse()

	servers := federation.SplitEndpoints(*server)
	configureClient := func(c *serve.Client) {
		c.MaxRetries = *retries
		c.Tenant = *tenant
	}
	// Job submission and polling are not affinity-routed; they talk to the
	// first listed node.
	newRemote := func() *serve.Client {
		c := serve.NewClient(servers[0])
		configureClient(c)
		return c
	}
	newMulti := func() *federation.MultiClient {
		mc, err := federation.NewMultiClient(servers, configureClient)
		if err != nil {
			fail("%v", err)
		}
		return mc
	}

	// -job needs no input system: fetch the job and leave.
	if *jobID != "" {
		if *server == "" {
			fail("-job requires -server")
		}
		c := newRemote()
		var (
			st  *serve.JobStatus
			err error
		)
		if *wait {
			st, err = c.WaitJob(context.Background(), *jobID)
		} else {
			st, err = c.Job(context.Background(), *jobID, 0)
		}
		if err != nil {
			fail("job %s: %v", *jobID, err)
		}
		printJob(st, *quiet)
		return
	}
	if *async && *server == "" {
		fail("-async requires -server")
	}

	// Fail fast on a bad backend before touching (or fully parsing) the
	// input: `alasolve -backend typo < big.mtx` must not read big.mtx.
	if !cli.ValidBackend(*backend) {
		fail("unknown backend %q (known: %s)", *backend, cli.BackendUsage())
	}

	var in io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		in = f
	}
	var (
		a *la.CSR
		b la.Vector
	)
	switch *format {
	case "triplet":
		var err error
		a, b, err = la.ReadSystem(in)
		if err != nil {
			fail("reading system: %v", err)
		}
	case "mm":
		var err error
		a, err = la.ReadMatrixMarket(in)
		if err != nil {
			fail("reading MatrixMarket: %v", err)
		}
		b = la.Constant(a.Dim(), 1)
		if *rhsFile != "" {
			b, err = readRHS(*rhsFile, a.Dim())
			if err != nil {
				fail("%v", err)
			}
		}
	default:
		fail("unknown format %q", *format)
	}

	if *batchFile != "" {
		raw, err := os.ReadFile(*batchFile)
		if err != nil {
			fail("%v", err)
		}
		rhs, err := cli.ParseRHSBatch(string(raw), a.Dim())
		if err != nil {
			fail("%v", err)
		}
		if *async {
			req := buildBatchRequest(a, rhs, *backend, *tol, *maxLanes, *deadline)
			submitJob(newRemote(), serve.JobSubmitRequest{Tenant: *tenant, Batch: &req}, *wait, *quiet)
			return
		}
		var mc *federation.MultiClient
		if *server != "" {
			mc = newMulti()
		}
		solveBatch(a, rhs, mc, *backend, *deadline, *quiet, cli.SolveParams{
			Tol:       *tol,
			ADCBits:   *adcBits,
			Bandwidth: *bandwidth,
			Calibrate: *calibrate,
			Engine:    *engine,
			MaxLanes:  *maxLanes,
		})
		return
	}

	if *async {
		req := buildSolveRequest(a, b, *backend, *tol, *deadline, *jobs)
		submitJob(newRemote(), serve.JobSubmitRequest{Tenant: *tenant, Solve: &req}, *wait, *quiet)
		return
	}

	if *conc > 1 {
		if *server == "" {
			fail("-concurrency requires -server")
		}
		solveConcurrent(newMulti(), *conc, *backend, a, b, *tol, *deadline, *jobs, *quiet)
		return
	}

	var (
		u     la.Vector
		extra string
	)
	if *server != "" {
		u, extra = solveRemote(newMulti(), *backend, a, b, *tol, *deadline, *jobs)
	} else {
		out, err := cli.SolveSystem(context.Background(), *backend, a, b, cli.SolveParams{
			Tol:       *tol,
			ADCBits:   *adcBits,
			Bandwidth: *bandwidth,
			Calibrate: *calibrate,
			Engine:    *engine,
			Workers:   *jobs,
			BlockSize: *blockSize,
		})
		if err != nil {
			fail("%s: %v", *backend, err)
		}
		u, extra = out.U, out.Note
	}

	for i, v := range u {
		if *quiet {
			fmt.Printf("%.12g\n", v)
		} else {
			fmt.Printf("u[%d] = %.12g\n", i, v)
		}
	}
	if !*quiet {
		fmt.Printf("# backend: %s (%s)\n", *backend, extra)
		fmt.Printf("# relative residual: %.3e\n", la.RelativeResidual(a, u, b))
	}
}

// solveBatch runs the multi-RHS path — locally through one compiled
// session, or remotely through POST /v1/solve/batch — and prints one
// solution block per right-hand side.
func solveBatch(a *la.CSR, rhs []la.Vector, mc *federation.MultiClient, backend string, deadline time.Duration, quiet bool, p cli.SolveParams) {
	type item struct {
		u     la.Vector
		extra string
	}
	items := make([]item, 0, len(rhs))
	var summary string
	if mc != nil {
		req := buildBatchRequest(a, rhs, backend, p.Tol, p.MaxLanes, deadline)
		// Register-then-solve: the batch goes out by fingerprint, so re-runs
		// against the same daemon skip re-uploading the matrix entirely.
		resp, entry, err := mc.SolveBatchOperator(context.Background(), serve.PrepareOperator(a), req)
		if err != nil {
			fail("remote batch solve: %v", err)
		}
		for _, it := range resp.Items {
			ex := fmt.Sprintf("residual %.3e", it.Residual)
			if s := it.Analog; s != nil {
				ex += fmt.Sprintf(", analog time %.3e s, %d runs, %d refinements", s.AnalogSeconds, s.Runs, s.Refinements)
				if s.Lanes > 1 {
					ex += fmt.Sprintf(", %d lanes", s.Lanes)
				}
			}
			items = append(items, item{u: la.Vector(it.U), extra: ex})
		}
		summary = fmt.Sprintf("%d rhs served by %s in %.1f ms%s",
			len(resp.Items), entry, resp.ElapsedMs, provenance(resp.ServedBy, resp.Affinity))
	} else {
		outs, err := cli.SolveSystemBatch(context.Background(), backend, a, rhs, p)
		if err != nil {
			fail("%s: %v", backend, err)
		}
		for k, out := range outs {
			items = append(items, item{u: out.U, extra: fmt.Sprintf("residual %.3e, %s",
				la.RelativeResidual(a, out.U, rhs[k]), out.Note)})
		}
		summary = fmt.Sprintf("%d rhs solved on one compiled session", len(outs))
	}
	for k, it := range items {
		if quiet {
			for _, v := range it.u {
				fmt.Printf("%.12g\n", v)
			}
			continue
		}
		fmt.Printf("# rhs %d (%s)\n", k, it.extra)
		for i, v := range it.u {
			fmt.Printf("u[%d] = %.12g\n", i, v)
		}
	}
	if !quiet {
		fmt.Printf("# backend: %s (%s)\n", backend, summary)
	}
}

// buildSolveRequest serializes the parsed system into the shared serve
// schema (used by both the synchronous remote path and async jobs).
func buildSolveRequest(a *la.CSR, b la.Vector, backend string, tol float64, deadline time.Duration, jobs int) serve.SolveRequest {
	req := serve.SolveRequest{Backend: backend, N: a.Dim(), B: b, Tol: tol, Workers: jobs}
	for i := 0; i < a.Dim(); i++ {
		a.VisitRow(i, func(j int, v float64) {
			req.A = append(req.A, serve.Entry{Row: i, Col: j, Val: v})
		})
	}
	if deadline > 0 {
		req.TimeoutMs = int(deadline / time.Millisecond)
	}
	return req
}

// buildBatchRequest is buildSolveRequest's multi-RHS counterpart.
func buildBatchRequest(a *la.CSR, rhs []la.Vector, backend string, tol float64, maxLanes int, deadline time.Duration) serve.BatchSolveRequest {
	req := serve.BatchSolveRequest{Backend: backend, N: a.Dim(), Tol: tol, MaxLanes: maxLanes}
	for i := 0; i < a.Dim(); i++ {
		a.VisitRow(i, func(j int, v float64) {
			req.A = append(req.A, serve.Entry{Row: i, Col: j, Val: v})
		})
	}
	for _, b := range rhs {
		req.RHS = append(req.RHS, []float64(b))
	}
	if deadline > 0 {
		req.TimeoutMs = int(deadline / time.Millisecond)
	}
	return req
}

// submitJob posts one async job; with wait it then blocks until the job
// is terminal and prints the result as the synchronous path would.
func submitJob(c *serve.Client, req serve.JobSubmitRequest, wait, quiet bool) {
	st, err := c.SubmitJob(context.Background(), req)
	if err != nil {
		fail("submitting job: %v", err)
	}
	if !wait {
		if quiet {
			fmt.Println(st.ID)
		} else {
			note := ""
			if st.Deduped {
				note = " (deduplicated: an equivalent job is already in the store)"
			}
			fmt.Printf("job %s %s%s\n", st.ID, st.State, note)
			fmt.Printf("# poll with: alasolve -server ... -job %s [-wait]\n", st.ID)
		}
		return
	}
	final, err := c.WaitJob(context.Background(), st.ID)
	if err != nil {
		fail("waiting for job %s: %v", st.ID, err)
	}
	printJob(final, quiet)
}

// printJob renders a job status: done jobs print their stored solution
// exactly like a synchronous solve, failed ones exit with the recorded
// error, and everything else reports the lifecycle state.
func printJob(st *serve.JobStatus, quiet bool) {
	switch st.State {
	case "done":
	case "failed", "cancelled":
		msg := st.State
		if st.Error != nil {
			msg += fmt.Sprintf(" (%s: %s)", st.Error.Code, st.Error.Error)
		}
		fail("job %s %s", st.ID, msg)
	default:
		if quiet {
			fmt.Println(st.State)
		} else {
			fmt.Printf("job %s %s (attempts %d, submitted %s)\n",
				st.ID, st.State, st.Attempts, st.SubmittedAt.Format(time.RFC3339))
		}
		return
	}
	switch st.Kind {
	case serve.JobKindSolve:
		var resp serve.SolveResponse
		if err := json.Unmarshal(st.Result, &resp); err != nil {
			fail("decoding job %s result: %v", st.ID, err)
		}
		for i, v := range resp.U {
			if quiet {
				fmt.Printf("%.12g\n", v)
			} else {
				fmt.Printf("u[%d] = %.12g\n", i, v)
			}
		}
		if !quiet {
			fmt.Printf("# job %s done: backend %s, residual %.3e, solved in %.1f ms\n",
				st.ID, resp.Backend, resp.Residual, resp.ElapsedMs)
		}
	case serve.JobKindBatch:
		var resp serve.BatchSolveResponse
		if err := json.Unmarshal(st.Result, &resp); err != nil {
			fail("decoding job %s result: %v", st.ID, err)
		}
		for k, it := range resp.Items {
			if quiet {
				for _, v := range it.U {
					fmt.Printf("%.12g\n", v)
				}
				continue
			}
			fmt.Printf("# rhs %d (residual %.3e)\n", k, it.Residual)
			for i, v := range it.U {
				fmt.Printf("u[%d] = %.12g\n", i, v)
			}
		}
		if !quiet {
			fmt.Printf("# job %s done: backend %s, %d rhs in %.1f ms\n",
				st.ID, resp.Backend, len(resp.Items), resp.ElapsedMs)
		}
	default:
		fail("job %s has unknown kind %q", st.ID, st.Kind)
	}
}

// solveRemote ships the parsed system to an alad daemon (or federation
// node list) over the shared serve schema and returns the solution plus
// a cost summary with routing provenance.
func solveRemote(mc *federation.MultiClient, backend string, a *la.CSR, b la.Vector, tol float64, deadline time.Duration, jobs int) (la.Vector, string) {
	req := buildSolveRequest(a, b, backend, tol, deadline, jobs)
	resp, entry, err := mc.Solve(context.Background(), req)
	if err != nil {
		fail("remote solve: %v", err)
	}
	extra := fmt.Sprintf("served by %s in %.1f ms", entry, resp.ElapsedMs)
	extra += provenance(resp.ServedBy, resp.Affinity)
	if resp.Backend != backend {
		// The server routed the request elsewhere (e.g. a too-large analog
		// system fanned out over the pool as a decomposed solve).
		extra += fmt.Sprintf(", routed to %s", resp.Backend)
	}
	if s := resp.Analog; s != nil {
		extra += fmt.Sprintf(", analog time %.3e s, %d runs, %d refinements, %d rescales, chip class %d",
			s.AnalogSeconds, s.Runs, s.Refinements, s.Rescales, s.ChipClass)
	} else if s := resp.Digital; s != nil {
		extra += fmt.Sprintf(", %d iterations, %d MACs", s.Iterations, s.MACs)
	}
	if d := resp.Decompose; d != nil {
		extra += fmt.Sprintf("; decomposed: %d blocks × %d sweeps on %d chips, %d configs (%d pinned reuses), %d inner refinements",
			d.Blocks, d.Sweeps, d.Chips, d.Configs, d.ReuseHits, d.InnerRefinements)
	}
	return la.Vector(resp.U), extra
}

// solveConcurrent fires n identical solves at the daemon at once. All of
// them carry the same operator fingerprint, so a coalescing daemon folds
// them into shared lane waves; each answer's provenance line shows
// whether (and how wide) that happened. The solutions are bit-identical
// to a solo solve by construction, so only the first is printed.
func solveConcurrent(mc *federation.MultiClient, n int, backend string, a *la.CSR, b la.Vector, tol float64, deadline time.Duration, jobs int, quiet bool) {
	// Register the operator once up front; the n concurrent requests then
	// carry only the fingerprint and the right-hand side, so the wire cost
	// of the storm is O(n·dim) instead of O(n·nnz).
	op := serve.PrepareOperator(a)
	req := buildSolveRequest(a, b, backend, tol, deadline, jobs)
	type result struct {
		resp  *serve.SolveResponse
		entry string
		err   error
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, entry, err := mc.SolveOperator(context.Background(), op, req)
			results[i] = result{resp: resp, entry: entry, err: err}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	coalesced := 0
	for i, r := range results {
		if r.err != nil {
			fail("request %d: %v", i, r.err)
		}
		if r.resp.Coalesced {
			coalesced++
		}
		if !quiet {
			fmt.Printf("# request %d: coalesced=%t wave_lanes=%d residual %.3e in %.1f ms%s\n",
				i, r.resp.Coalesced, r.resp.WaveLanes, r.resp.Residual, r.resp.ElapsedMs,
				provenance(r.resp.ServedBy, r.resp.Affinity))
		}
	}
	for i, v := range results[0].resp.U {
		if quiet {
			fmt.Printf("%.12g\n", v)
		} else {
			fmt.Printf("u[%d] = %.12g\n", i, v)
		}
	}
	if !quiet {
		fmt.Printf("# backend: %s (%d concurrent requests, %d coalesced, wall %.1f ms)\n",
			backend, n, coalesced, float64(wall.Microseconds())/1000)
	}
}

// provenance renders a response's federation routing stamp: which node
// actually solved it and whether affinity placed it there (hit), the
// entry node kept it (local), or health gating re-routed it (fallback).
// Non-federated daemons leave both fields empty and print nothing.
func provenance(servedBy, affinity string) string {
	if servedBy == "" {
		return ""
	}
	if affinity == "" {
		affinity = "local"
	}
	return fmt.Sprintf(", served-by=%s affinity=%s", servedBy, affinity)
}

// readRHS loads one float per non-empty line.
func readRHS(path string, n int) (la.Vector, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return cli.ParseRHS(string(raw), n)
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "alasolve: "+format+"\n", args...)
	os.Exit(1)
}
