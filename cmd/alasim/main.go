// Command alasim is the lab bench for the simulated chip: it wires one of
// several demonstration circuits onto a prototype-style chip over the
// Table I ISA, runs it, and streams the sampled waveform as CSV —
// the continuous-time traces that Figures 1 and 5 of the paper sketch.
//
// Usage:
//
//	alasim -circuit decay -duration 500u
//	alasim -circuit oscillator -samples 400 > osc.csv
//	alasim -circuit sle2
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"analogacc"
	"analogacc/internal/chip"
	"analogacc/internal/cli"
	"analogacc/internal/isa"
)

func main() {
	var (
		circuit   = flag.String("circuit", "decay", "decay | oscillator | sle2 | lut")
		duration  = flag.String("duration", "500u", "analog run time, e.g. 2m, 500u, 0.001")
		samples   = flag.Int("samples", 200, "waveform samples to capture")
		bandwidth = flag.Float64("bandwidth", 20e3, "chip bandwidth in Hz")
	)
	flag.Parse()

	dur, err := cli.ParseDuration(*duration)
	if err != nil {
		fail("%v", err)
	}
	spec := analogacc.PrototypeChip()
	spec.Bandwidth = *bandwidth
	spec.ADCBits = 12
	spec.DACBits = 12
	dev, err := chip.New(spec)
	if err != nil {
		fail("%v", err)
	}
	h := isa.NewHost(isa.NewLoopback(dev))
	pm := dev.Ports()

	var adcs []int
	switch *circuit {
	case "decay":
		// du/dt = -u, u(0) = 1: integ -> fanout -> {mul(-1) -> integ, adc}.
		must(h.SetConn(pm.IntegratorOut(0), pm.FanoutIn(0)))
		must(h.SetConn(pm.FanoutOut(0, 0), pm.MultiplierIn(0, 0)))
		must(h.SetConn(pm.FanoutOut(0, 1), pm.ADCIn(0)))
		must(h.SetMulGain(0, -1))
		must(h.SetConn(pm.MultiplierOut(0), pm.IntegratorIn(0)))
		must(h.SetIntInitial(0, 1))
		adcs = []int{0}
	case "oscillator":
		// u'' = -u: two integrators in a loop; u(0)=0.8.
		must(h.SetConn(pm.IntegratorOut(1), pm.IntegratorIn(0))) // du/dt = v
		must(h.SetConn(pm.IntegratorOut(0), pm.FanoutIn(0)))
		must(h.SetConn(pm.FanoutOut(0, 0), pm.MultiplierIn(0, 0)))
		must(h.SetConn(pm.FanoutOut(0, 1), pm.ADCIn(0)))
		must(h.SetMulGain(0, -1))
		must(h.SetConn(pm.MultiplierOut(0), pm.IntegratorIn(1))) // dv/dt = -u
		must(h.SetIntInitial(0, 0.8))
		must(h.SetIntInitial(1, 0))
		adcs = []int{0}
	case "sle2":
		// Figure 5: du/dt = b - A u for A=[[0.8,0.2],[0.2,0.6]], b=(0.5,0.3).
		a := [2][2]float64{{0.8, 0.2}, {0.2, 0.6}}
		b := [2]float64{0.5, 0.3}
		for j := 0; j < 2; j++ {
			must(h.SetConn(pm.IntegratorOut(j), pm.FanoutIn(2*j)))
			must(h.SetConn(pm.FanoutOut(2*j, 0), pm.MultiplierIn(j, 0)))
			must(h.SetConn(pm.FanoutOut(2*j, 1), pm.FanoutIn(2*j+1)))
			must(h.SetConn(pm.FanoutOut(2*j+1, 0), pm.MultiplierIn(2+j, 0)))
			must(h.SetConn(pm.FanoutOut(2*j+1, 1), pm.ADCIn(j)))
		}
		// mul j carries -a[0][j] into row 0; mul 2+j carries -a[1][j] into row 1.
		must(h.SetMulGain(0, -a[0][0]))
		must(h.SetMulGain(1, -a[0][1]))
		must(h.SetMulGain(2, -a[1][0]))
		must(h.SetMulGain(3, -a[1][1]))
		must(h.SetConn(pm.MultiplierOut(0), pm.IntegratorIn(0)))
		must(h.SetConn(pm.MultiplierOut(1), pm.IntegratorIn(0)))
		must(h.SetConn(pm.MultiplierOut(2), pm.IntegratorIn(1)))
		must(h.SetConn(pm.MultiplierOut(3), pm.IntegratorIn(1)))
		must(h.SetDacConstant(0, b[0]))
		must(h.SetDacConstant(1, b[1]))
		must(h.SetConn(pm.DACOut(0), pm.IntegratorIn(0)))
		must(h.SetConn(pm.DACOut(1), pm.IntegratorIn(1)))
		adcs = []int{0, 1}
	case "lut":
		// Triangle-wave input through a sine lookup table.
		period := dur / 2
		must(dev.SetStimulus(0, func(t float64) float64 {
			phase := t / period
			frac := phase - float64(int(phase))
			if frac < 0.5 {
				return 4*frac - 1
			}
			return 3 - 4*frac
		}))
		must(h.SetAnaInputEn(0, true))
		must(h.SetConn(pm.InputOut(0), pm.LUTIn(0)))
		must(h.SetConn(pm.LUTOut(0), pm.ADCIn(0)))
		var table [256]byte
		for i := range table {
			x := float64(i)/255*2 - 1
			y := 0.95 * math.Sin(math.Pi*x)
			table[i] = byte((y + 1) / 2 * 255)
		}
		must(h.SetFunction(0, table))
		adcs = []int{0}
	default:
		fail("unknown circuit %q", *circuit)
	}
	must(h.CfgCommit())

	// Sample by running in short timed bursts and reading after each.
	stepCycles := uint32(dur / float64(*samples) * spec.TimerHz)
	if stepCycles == 0 {
		stepCycles = 1
	}
	must(h.SetTimeout(stepCycles))

	header := []string{"time_s"}
	for _, a := range adcs {
		header = append(header, fmt.Sprintf("adc%d", a))
	}
	fmt.Println(strings.Join(header, ","))
	emit := func(t float64) {
		row := []string{fmt.Sprintf("%.9g", t)}
		for _, a := range adcs {
			v, err := h.AnalogAvg(uint16(a), 1)
			must(err)
			row = append(row, fmt.Sprintf("%.6f", v))
		}
		fmt.Println(strings.Join(row, ","))
	}
	emit(0)
	for i := 1; i <= *samples; i++ {
		must(h.ExecStart())
		emit(float64(i) * float64(stepCycles) / spec.TimerHz)
	}

	exp, err := h.ReadExp()
	must(err)
	bits := isa.UnpackBits(exp, dev.NumUnits())
	for i, set := range bits {
		if set {
			fmt.Fprintf(os.Stderr, "alasim: exception latched at unit %d\n", i)
		}
	}
}

func must(err error) {
	if err != nil {
		fail("%v", err)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "alasim: "+format+"\n", args...)
	os.Exit(1)
}
