// Command alad is the analog-accelerator solve daemon: an HTTP/JSON
// service that keeps a pool of pre-built, pre-calibrated simulated chips
// warm and serves A·u = b solve requests on them (or on the digital
// baseline backends), with bounded admission, per-request deadlines, and
// a /metrics observability surface.
//
// Usage:
//
//	alad -addr :8080 -pool 4
//	curl -s localhost:8080/v1/solve -d '{
//	  "backend": "analog-refined",
//	  "n": 2,
//	  "A": [{"i":0,"j":0,"v":0.8},{"i":0,"j":1,"v":0.2},
//	        {"i":1,"j":0,"v":0.2},{"i":1,"j":1,"v":0.6}],
//	  "b": [0.5, 0.3]
//	}'
//	curl -s localhost:8080/metrics
//
// With -federation the daemon joins a fingerprint-affinity cluster:
// requests entering any node are routed to the rendezvous owner of the
// matrix fingerprint, so repeat traffic lands where the operator is
// already programmed:
//
//	alad -addr :8080 -federation -advertise http://host1:8080 \
//	     -peers http://host2:8080,http://host3:8080
//
// SIGINT/SIGTERM flip /readyz to 503 (peers stop routing here) and
// drain in-flight solves before exit.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling handlers on DefaultServeMux, served only on -pprof
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"analogacc/internal/federation"
	"analogacc/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		pool      = flag.Int("pool", 2, "chips per size class")
		warm      = flag.String("warm", "4,16", "comma-separated system orders whose chip classes are pre-built at startup")
		maxDim    = flag.Int("max-dim", 256, "largest servable system order")
		queue     = flag.Int("queue", 64, "admission queue bound (requests beyond it get 429)")
		adcBits   = flag.Int("adc-bits", 12, "chip converter resolution")
		bandwidth = flag.Float64("bandwidth", 20e3, "chip analog bandwidth in Hz")
		maxBatch  = flag.Int("max-batch", 64, "largest number of right-hand sides one /v1/solve/batch request may carry")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-request solve deadline")
		drain     = flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight solves")
		engine    = flag.String("engine", "auto", "simulation kernel for pooled chips: auto | interpreter | compiled | fused")
		simJobs   = flag.Int("sim-workers", 0, "fused-engine worker bound per chip (0 = auto; results are identical for every value)")
		coalesce  = flag.Duration("coalesce-window", 500*time.Microsecond, "how long an analog solve may wait for same-operator companions before its lane wave fires (waves also close when 16 lanes fill or an idle resident chip exists; negative disables coalescing)")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty = off)")

		federate   = flag.Bool("federation", false, "enable the fingerprint-affinity federation router (requires -advertise; use -peers for a multi-node cluster)")
		peers      = flag.String("peers", "", "comma-separated peer base URLs (e.g. http://host2:8080,http://host3:8080)")
		advertise  = flag.String("advertise", "", "this node's own base URL as peers reach it (e.g. http://host1:8080); also the node name stamped into responses")
		pollEvery  = flag.Duration("poll-interval", time.Second, "federation membership health-poll period")
		noAffinity = flag.Bool("no-affinity", false, "federation: route to a random healthy member instead of the fingerprint owner (baseline/debug)")

		store        = flag.String("store", "", "async job journal path (empty: jobs run in memory and do not survive restarts)")
		jobWorkers   = flag.Int("job-workers", 2, "async job executor goroutines (-1 disables execution)")
		jobLease     = flag.Duration("job-lease", 10*time.Second, "async job lease TTL; a dead executor loses its job back to the queue after this long")
		jobQueue     = flag.Int("job-queue", 256, "async job backlog bound (submissions beyond it get 429)")
		jobQuota     = flag.Int("job-quota", 0, "per-tenant live async job cap (0 = unlimited)")
		jobExecDelay = flag.Duration("job-exec-delay", 0, "fault-injection hold between leasing and executing each job (crash testing only)")

		regMaxOps   = flag.Int("registry-max-ops", 256, "operator registry capacity (registered matrices; LRU evicts beyond it)")
		regMaxBytes = flag.Int64("registry-max-bytes", 256<<20, "operator registry byte cap (estimated resident bytes; LRU evicts beyond it)")
	)
	flag.Parse()

	warmSizes, err := parseWarm(*warm)
	if err != nil {
		log.Fatalf("alad: %v", err)
	}
	if *federate && *advertise == "" {
		log.Fatalf("alad: -federation requires -advertise (the URL peers reach this node at)")
	}
	nodeName := federation.NormalizeURL(*advertise)
	srv, err := serve.New(serve.Config{
		NodeName: nodeName,
		Pool: serve.PoolConfig{
			ChipsPerClass: *pool,
			WarmSizes:     warmSizes,
			MaxDim:        *maxDim,
			ADCBits:       *adcBits,
			Bandwidth:     *bandwidth,
			Engine:        *engine,
			SimWorkers:    *simJobs,
		},
		QueueBound:     *queue,
		MaxBatchRHS:    *maxBatch,
		DefaultTimeout: *timeout,
		CoalesceWindow: *coalesce,
		JobStore:       *store,
		JobWorkers:     *jobWorkers,
		JobLeaseTTL:    *jobLease,
		JobMaxQueued:   *jobQueue,
		JobTenantQuota: *jobQuota,
		JobExecDelay:   *jobExecDelay,

		RegistryMaxOps:   *regMaxOps,
		RegistryMaxBytes: *regMaxBytes,
	})
	if err != nil {
		log.Fatalf("alad: %v", err)
	}
	expvar.Publish("alad", expvar.Func(func() any { return srv.Snapshot() }))

	if *pprofAddr != "" {
		// A separate listener keeps the profiling surface off the public
		// service port; the pprof import registered its handlers on
		// http.DefaultServeMux, which the main server never uses.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			log.Fatalf("alad: pprof listener: %v", err)
		}
		log.Printf("alad: pprof on http://%s/debug/pprof/", pln.Addr())
		go func() {
			if err := http.Serve(pln, nil); err != nil {
				log.Printf("alad: pprof server: %v", err)
			}
		}()
	}

	var router *federation.Router
	handler := srv.Handler()
	if *federate {
		router = federation.NewRouter(federation.Config{
			Self:         nodeName,
			Peers:        federation.SplitEndpoints(*peers),
			PollInterval: *pollEvery,
			Disabled:     *noAffinity,
		}, srv)
		router.Start()
		defer router.Stop()
		handler = router.Handler()
	}

	mux := http.NewServeMux()
	mux.Handle("/", handler)
	mux.Handle("GET /debug/vars", expvar.Handler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("alad: %v", err)
	}
	httpSrv := &http.Server{Handler: mux}
	log.Printf("alad: listening on %s (pool %d/class, warm %v, queue %d, engine %s)",
		ln.Addr(), *pool, warmSizes, *queue, *engine)
	if router != nil {
		log.Printf("alad: federation on as %s (peers %v, affinity %v, poll %v)",
			nodeName, federation.SplitEndpoints(*peers), !*noAffinity, *pollEvery)
	}
	if js := srv.Jobs().Stats(); js.Replayed > 0 || *store != "" {
		log.Printf("alad: job store %q: %d jobs replayed (%d lease reclaims, %d torn records dropped), %d queued",
			*store, js.Replayed, js.LeaseExpired, js.TornDropped, js.Queued)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("alad: %v — draining in-flight solves (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Flip /readyz to 503 first so federation peers and load balancers
		// stop sending new work while in-flight solves finish.
		srv.SetDraining(true)
		if router != nil {
			router.Stop()
		}
		// Drain order: stop leasing new async work first, then close the
		// HTTP side (finishing admitted requests), then let running jobs
		// complete within the remaining budget. Whatever stays queued is
		// already journaled and replays on the next boot.
		srv.PauseJobs()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Fatalf("alad: drain incomplete: %v", err)
		}
		queued, derr := srv.DrainJobs(ctx)
		if derr != nil {
			log.Printf("alad: job drain incomplete (%v); running jobs re-queue via lease expiry on next boot", derr)
		}
		if err := srv.Close(); err != nil {
			log.Printf("alad: closing job store: %v", err)
		}
		log.Printf("alad: %d queued jobs persisted for next boot", queued)
		log.Printf("alad: drained, bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("alad: %v", err)
		}
	}
}

func parseWarm(s string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad warm size %q", f)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
