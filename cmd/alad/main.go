// Command alad is the analog-accelerator solve daemon: an HTTP/JSON
// service that keeps a pool of pre-built, pre-calibrated simulated chips
// warm and serves A·u = b solve requests on them (or on the digital
// baseline backends), with bounded admission, per-request deadlines, and
// a /metrics observability surface.
//
// Usage:
//
//	alad -addr :8080 -pool 4
//	curl -s localhost:8080/v1/solve -d '{
//	  "backend": "analog-refined",
//	  "n": 2,
//	  "A": [{"i":0,"j":0,"v":0.8},{"i":0,"j":1,"v":0.2},
//	        {"i":1,"j":0,"v":0.2},{"i":1,"j":1,"v":0.6}],
//	  "b": [0.5, 0.3]
//	}'
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM drain in-flight solves before exit.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"analogacc/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		pool      = flag.Int("pool", 2, "chips per size class")
		warm      = flag.String("warm", "4,16", "comma-separated system orders whose chip classes are pre-built at startup")
		maxDim    = flag.Int("max-dim", 256, "largest servable system order")
		queue     = flag.Int("queue", 64, "admission queue bound (requests beyond it get 429)")
		adcBits   = flag.Int("adc-bits", 12, "chip converter resolution")
		bandwidth = flag.Float64("bandwidth", 20e3, "chip analog bandwidth in Hz")
		maxBatch  = flag.Int("max-batch", 64, "largest number of right-hand sides one /v1/solve/batch request may carry")
		timeout   = flag.Duration("timeout", 30*time.Second, "default per-request solve deadline")
		drain     = flag.Duration("drain", 30*time.Second, "shutdown drain budget for in-flight solves")
	)
	flag.Parse()

	warmSizes, err := parseWarm(*warm)
	if err != nil {
		log.Fatalf("alad: %v", err)
	}
	srv, err := serve.New(serve.Config{
		Pool: serve.PoolConfig{
			ChipsPerClass: *pool,
			WarmSizes:     warmSizes,
			MaxDim:        *maxDim,
			ADCBits:       *adcBits,
			Bandwidth:     *bandwidth,
		},
		QueueBound:     *queue,
		MaxBatchRHS:    *maxBatch,
		DefaultTimeout: *timeout,
	})
	if err != nil {
		log.Fatalf("alad: %v", err)
	}
	expvar.Publish("alad", expvar.Func(func() any { return srv.Snapshot() }))

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("alad: %v", err)
	}
	httpSrv := &http.Server{Handler: mux}
	log.Printf("alad: listening on %s (pool %d/class, warm %v, queue %d)",
		ln.Addr(), *pool, warmSizes, *queue)

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("alad: %v — draining in-flight solves (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Fatalf("alad: drain incomplete: %v", err)
		}
		log.Printf("alad: drained, bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("alad: %v", err)
		}
	}
}

func parseWarm(s string) ([]int, error) {
	var sizes []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad warm size %q", f)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}
