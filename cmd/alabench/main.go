// Command alabench regenerates the paper's evaluation artifacts: every
// figure and table has a registered experiment that emits the same
// rows/series the paper reports.
//
// Usage:
//
//	alabench -list
//	alabench -e fig8
//	alabench -e all -quick
//	alabench -e fig12 -csv -o fig12.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"analogacc"
)

func main() {
	var (
		expID = flag.String("e", "", "experiment ID to run, or 'all'")
		list  = flag.Bool("list", false, "list available experiments")
		quick = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		csv   = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		out   = flag.String("o", "", "write output to a file instead of stdout")
		quiet = flag.Bool("q", false, "suppress progress messages")
		jobs  = flag.Int("j", 0, "max concurrent sweep points/experiments (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	if *list {
		for _, e := range analogacc.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	if *expID == "" {
		fmt.Fprintln(os.Stderr, "alabench: pick an experiment with -e <id> (see -list)")
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "alabench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	cfg := analogacc.ExperimentConfig{Quick: *quick, Jobs: *jobs}
	if !*quiet {
		cfg.Progress = os.Stderr
	}

	var targets []analogacc.Experiment
	if *expID == "all" {
		targets = analogacc.Experiments()
	} else {
		e, ok := analogacc.ExperimentByID(*expID)
		if !ok {
			fmt.Fprintf(os.Stderr, "alabench: unknown experiment %q (see -list)\n", *expID)
			os.Exit(2)
		}
		targets = []analogacc.Experiment{e}
	}

	tables, err := analogacc.RunExperiments(cfg, targets)
	if err != nil {
		fmt.Fprintf(os.Stderr, "alabench: %v\n", err)
		os.Exit(1)
	}
	for i, table := range tables {
		if i > 0 {
			fmt.Fprintln(w)
		}
		var rerr error
		if *csv {
			rerr = table.RenderCSV(w)
		} else {
			rerr = table.Render(w)
		}
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "alabench: rendering %s: %v\n", table.ID, rerr)
			os.Exit(1)
		}
	}
}
