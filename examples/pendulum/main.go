// Pendulum: the chip's programmable nonlinearities in the loop. The
// large-angle pendulum u” = −sin(u) cannot be solved by the linear
// datapath alone; here the sine runs through the prototype's 256-deep
// SRAM lookup table, wired between the angle integrator and the velocity
// integrator — continuous-time hybrid computation, with function scaling
// handled by the host (the LUT is programmed with sin(σ·x)/‖sin‖ so the
// full table range is used at the chosen dynamic range).
package main

import (
	"fmt"
	"log"
	"math"

	"analogacc"
)

func main() {
	spec := analogacc.PrototypeChip()
	spec.ADCBits = 12
	spec.DACBits = 12
	acc, _, err := analogacc.NewSimulated(spec)
	if err != nil {
		log.Fatal(err)
	}

	// State (u, v): du/dt = v (linear part), dv/dt = −sin(u) (LUT part).
	m := analogacc.MustCSR(2, []analogacc.COOEntry{{Row: 0, Col: 1, Val: 1}})
	terms := []analogacc.LUTTerm{{
		Input: 0,
		Fn:    math.Sin,
		Coef:  analogacc.VectorOf(0, -1),
	}}
	const amplitude = 1.5 // rad: far beyond the small-angle regime
	traj, err := acc.SolveODENonlinear(m, terms, analogacc.NewVector(2),
		analogacc.VectorOf(amplitude, 0), analogacc.NonlinearODEOptions{
			ODEOptions: analogacc.ODEOptions{Duration: 10, SamplePoints: 50},
		})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("large-angle pendulum (amplitude %.1f rad) on the analog accelerator\n", amplitude)
	fmt.Printf("value scale S=%.3g, solution scale sigma=%.3g, %.2e analog s for 10 problem s\n\n",
		traj.Scaling.S, traj.Scaling.Sigma, traj.AnalogTime)
	fmt.Println("   t      u(t) [rad]")
	for i, tt := range traj.Times {
		if i%5 != 0 {
			continue
		}
		bar := renderBar(traj.States[i][0] / amplitude)
		fmt.Printf("  %5.2f   %+6.3f  %s\n", tt, traj.States[i][0], bar)
	}

	// Period check: the first downward zero crossing is a quarter period.
	quarter := math.NaN()
	for i := 1; i < len(traj.Times); i++ {
		if traj.States[i-1][0] > 0 && traj.States[i][0] <= 0 {
			quarter = traj.Times[i]
			break
		}
	}
	fmt.Printf("\nmeasured period: %.2f s", 4*quarter)
	fmt.Printf("   (small-angle prediction: %.2f s — the LUT's nonlinearity is real)\n", 2*math.Pi)
}

// renderBar draws a crude terminal oscilloscope trace.
func renderBar(x float64) string {
	const width = 41
	pos := int((x + 1) / 2 * float64(width-1))
	if pos < 0 {
		pos = 0
	}
	if pos >= width {
		pos = width - 1
	}
	out := make([]rune, width)
	for i := range out {
		out[i] = ' '
	}
	out[width/2] = '|'
	out[pos] = '*'
	return string(out)
}
