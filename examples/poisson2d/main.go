// Poisson2D: the paper's headline workload (Sections IV-B and V). A 2-D
// Poisson equation is discretized to 144 unknowns — more than the chip can
// hold — and solved by domain decomposition: 1-D strip subproblems on a
// 12-variable simulated accelerator with an outer block iteration, each
// strip refined to high precision with Algorithm 2. The digital CG
// baseline runs side by side at the paper's equal-precision stop.
package main

import (
	"fmt"
	"log"
	"time"

	"analogacc"
)

func main() {
	const l = 12 // 12×12 interior grid: N = 144
	prob, err := analogacc.Poisson(2, l)
	if err != nil {
		log.Fatal(err)
	}
	n := prob.Grid.N()
	fmt.Printf("2-D Poisson, %d×%d grid: %d unknowns\n", l, l, n)

	// The chip holds one grid row at a time (12 integrators).
	spec := analogacc.ScaledChip(l, 12, 20e3, 6)
	acc, _, err := analogacc.NewSimulated(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip: %d integrators, %d multipliers, %d-bit converters, %.0f kHz\n",
		spec.Counts().Integrators, spec.Counts().Multipliers, spec.ADCBits, spec.Bandwidth/1e3)

	x, stats, err := acc.SolveDecomposed(prob.A, prob.B, analogacc.DecomposeOptions{
		BlockSize:      l, // one strip per chip load
		OuterTolerance: 1e-6,
		Inner:          analogacc.SolveOptions{Tolerance: 1e-8},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analog decomposition: %d blocks, %d outer sweeps, %.3e analog s, error vs exact %.2e\n",
		stats.Blocks, stats.Sweeps, stats.AnalogTime, prob.L2Error(x))

	// Digital baseline: matrix-free stencil CG with the paper's stop
	// ("no element changes by more than 1/256 of full scale").
	st := analogacc.NewPoissonStencil(prob.Grid)
	start := time.Now()
	res, err := analogacc.CG(st, prob.B, analogacc.DigitalOptions{
		Criterion: analogacc.DeltaInf,
		Tol:       prob.Exact.NormInf() / 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("digital CG:           %d iterations, %v wall, error vs exact %.2e\n",
		res.Iterations, time.Since(start).Round(time.Microsecond), prob.L2Error(res.X))

	fmt.Println("\nsolution slice (grid row 6):")
	for xcol := 0; xcol < l; xcol++ {
		i := prob.Grid.Index(xcol, 6, 0)
		fmt.Printf("  u(%2d,6): analog %.6f  exact %.6f\n", xcol, x[i], prob.Exact[i])
	}
}
