// Multigrid: Section IV-A's integration — a geometric multigrid PDE solver
// whose coarsest level is handled by the analog accelerator at single-run
// (ADC-limited) precision. Because multigrid only needs approximate
// coarse corrections, the low-precision analog solve does not hurt final
// accuracy: "less stable, inaccurate, low precision techniques, such as
// analog acceleration, may also be used to support multigrid".
package main

import (
	"fmt"
	"log"

	"analogacc"
)

func main() {
	const l = 63 // 63×63 interior grid: N = 3969
	prob, err := analogacc.Poisson(2, l)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("2-D Poisson, %d unknowns, V-cycle multigrid down to a 3×3 coarse level\n\n", prob.Grid.N())

	// Reference run: direct digital coarse solves.
	mgDigital, err := analogacc.NewMultigrid(prob.Grid, analogacc.MGOptions{Tolerance: 1e-8})
	if err != nil {
		log.Fatal(err)
	}
	uD, statsD, err := mgDigital.Solve(prob.B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("digital coarse solver: %d cycles, %d coarse solves, residual %.1e, error %.2e\n",
		statsD.Cycles, statsD.CoarseSolves, statsD.Residual, prob.L2Error(uD))

	// Analog run: the 3×3 coarse level (9 unknowns) solved on a 9-variable
	// simulated chip, one session reused for every V-cycle, one analog
	// run's precision per solve.
	acc, _, err := analogacc.NewSimulated(analogacc.ScaledChip(9, 8, 20e3, 6))
	if err != nil {
		log.Fatal(err)
	}
	var sess *analogacc.Session
	coarse := func(a *analogacc.CSR, b analogacc.Vector) (analogacc.Vector, error) {
		if sess == nil {
			s, err := acc.BeginSession(a)
			if err != nil {
				return nil, err
			}
			sess = s
		}
		u, _, err := sess.SolveFor(b, analogacc.SolveOptions{})
		return u, err
	}
	mgAnalog, err := analogacc.NewMultigrid(prob.Grid, analogacc.MGOptions{Tolerance: 1e-8, Coarse: coarse})
	if err != nil {
		log.Fatal(err)
	}
	uA, statsA, err := mgAnalog.Solve(prob.B)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analog coarse solver:  %d cycles, %d coarse solves, residual %.1e, error %.2e\n",
		statsA.Cycles, statsA.CoarseSolves, statsA.Residual, prob.L2Error(uA))
	fmt.Printf("\nanalog cost: %.3e analog seconds across %d chip runs (8-bit ADC, no refinement)\n",
		acc.AnalogTime(), acc.Runs())
	fmt.Println("both converge to the same fine-grid accuracy: approximate analog solves suffice inside multigrid.")
}
