// ODESolver: the chip's native mode (Figure 1 and Section II). A damped
// oscillator u” = −u − 0.4·u' runs as a continuous-time trajectory on the
// simulated accelerator, sampled through its ADCs, and compared against
// the digital RK4 reference — the embedded-systems use the chip was
// actually designed for, where "actuators can use such results directly".
package main

import (
	"fmt"
	"log"
	"math"

	"analogacc"
)

func main() {
	spec := analogacc.PrototypeChip()
	spec.ADCBits = 12
	spec.DACBits = 12
	acc, _, err := analogacc.NewSimulated(spec)
	if err != nil {
		log.Fatal(err)
	}

	// State (u, v): du/dt = v, dv/dt = −u − 0.4·v, u(0) = 0.6.
	m := analogacc.MustCSR(2, []analogacc.COOEntry{
		{Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 0, Val: -1}, {Row: 1, Col: 1, Val: -0.4},
	})
	traj, err := acc.SolveODE(m, analogacc.NewVector(2), analogacc.VectorOf(0.6, 0), analogacc.ODEOptions{
		Duration:     12,
		SamplePoints: 24,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Closed form: u(t) = 0.6·e^{−0.2t}(cos ωt + (0.2/ω)·sin ωt).
	omega := math.Sqrt(1 - 0.04)
	closed := func(t float64) float64 {
		return 0.6 * math.Exp(-0.2*t) * (math.Cos(omega*t) + 0.2/omega*math.Sin(omega*t))
	}

	fmt.Printf("damped oscillator on the analog accelerator (%.1e analog s for %g problem s)\n\n",
		traj.AnalogTime, traj.Times[len(traj.Times)-1])
	fmt.Println("   t      analog u(t)   closed form   |error|")
	var worst float64
	for i, t := range traj.Times {
		got := traj.States[i][0]
		want := closed(t)
		if e := math.Abs(got - want); e > worst {
			worst = e
		}
		if i%2 == 0 {
			fmt.Printf("  %5.2f   %+.5f      %+.5f      %.5f\n", t, got, want, math.Abs(got-want))
		}
	}
	fmt.Printf("\nworst sample error: %.5f (12-bit ADC full scale = %.5f per LSB)\n", worst, 2.0/4095)
	fmt.Printf("value/time scaling used: S=%.3g, sigma=%.3g — one problem second ran in %.2e analog seconds\n",
		traj.Scaling.S, traj.Scaling.Sigma, traj.AnalogTime/traj.Times[len(traj.Times)-1])
}
