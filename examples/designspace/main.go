// Designspace: the paper's Section V-B exploration. For each analog
// bandwidth design (20 kHz prototype, 80 kHz, 320 kHz, 1.3 MHz) this walks
// the Table II silicon model: how many grid points fit the 600 mm² die
// cap, what the accelerator draws at maximum activity, how fast it solves
// a 2-D Poisson problem, and what one solution costs in energy against the
// paper's GPU CG model.
package main

import (
	"fmt"
	"log"

	"analogacc"
)

func main() {
	comp := analogacc.MacroblockComplement()
	const l = 20 // N = 400: fits every design
	const bits = 8
	n := l * l

	prob, err := analogacc.Poisson(2, l)
	if err != nil {
		log.Fatal(err)
	}
	cg, err := analogacc.CG(prob.A, prob.B, analogacc.DigitalOptions{
		Criterion: analogacc.DeltaInf,
		Tol:       prob.Exact.NormInf() / 256,
	})
	if err != nil {
		log.Fatal(err)
	}
	gpuEnergy := float64(cg.MACs) * 225e-12

	fmt.Printf("design space for N = %d grid points (2-D Poisson, 1/256 precision)\n", n)
	fmt.Printf("GPU CG baseline: %d iterations, %d MACs, %.3e J at 225 pJ/MAC\n\n", cg.Iterations, cg.MACs, gpuEnergy)
	fmt.Println("bandwidth   die capacity   power @N     solve time   energy       vs GPU")
	fmt.Println("---------   ------------   ---------    ----------   ---------    ------")
	for _, bw := range analogacc.PaperBandwidths() {
		d := analogacc.Design{BandwidthHz: bw}
		capacity := d.MaxGridPoints(comp)
		if n > capacity {
			fmt.Printf("%7.0fkHz   %5d points   does not fit N=%d within 600 mm²\n", bw/1e3, capacity, n)
			continue
		}
		power := d.Power(n, comp)
		tsolve := d.SolveTimePoisson(2, l, bits)
		energy := d.SolveEnergyPoisson(2, l, bits, comp)
		verdict := fmt.Sprintf("%.1f× more", energy/gpuEnergy)
		if energy < gpuEnergy {
			verdict = fmt.Sprintf("%.0f%% saved", (1-energy/gpuEnergy)*100)
		}
		fmt.Printf("%7.0fkHz   %5d points   %7.3f W    %.3e s   %.3e J   %s\n",
			bw/1e3, capacity, power, tsolve, energy, verdict)
	}
	fmt.Println("\npaper findings reproduced: bandwidth buys speed linearly but costs area")
	fmt.Println("linearly too; the die cap cuts high-bandwidth designs short; efficiency")
	fmt.Println("gains cease once nearly all power sits in the analog signal path (~80 kHz).")
}
