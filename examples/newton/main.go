// Newton: the paper's Section VI-F future-work direction, built out. The
// nonlinear Bratu problem −∇²u = λ·e^u is solved by Newton's method with
// every linearized system J(u)·δ = −F(u) offloaded to the simulated analog
// accelerator (with Algorithm 2 refinement supplying the precision the
// outer iteration needs). A fully digital Newton runs alongside as the
// reference.
package main

import (
	"fmt"
	"log"
	"math"

	"analogacc"
)

func main() {
	const l = 8       // 8×8 interior grid
	const lambda = 2. // below the 2-D fold point λ* ≈ 6.81: unique solution
	prob, err := analogacc.NewBratu(2, l, lambda)
	if err != nil {
		log.Fatal(err)
	}
	n := prob.Dim()
	fmt.Printf("Bratu problem −∇²u = %.1f·e^u on an %d×%d grid (%d unknowns)\n\n", lambda, l, l, n)

	// Analog-accelerated Newton.
	acc, _, err := analogacc.NewSimulated(analogacc.ScaledChip(n, 12, 20e3, 6))
	if err != nil {
		log.Fatal(err)
	}
	u, stats, err := acc.SolveNonlinear(prob, analogacc.NewVector(n), analogacc.NewtonOptions{
		Tolerance: 1e-8,
		Inner:     analogacc.SolveOptions{Tolerance: 1e-9},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analog Newton: %d iterations, ‖F‖=%.1e, %.3e analog s over %d chip runs\n",
		stats.Iterations, stats.FinalNorm, stats.AnalogTime, stats.Runs)

	// Digital Newton reference.
	ud := analogacc.NewVector(n)
	f := analogacc.NewVector(n)
	iters := 0
	for ; iters < 50; iters++ {
		prob.Eval(f, ud)
		if f.NormInf() <= 1e-12 {
			break
		}
		step, err := analogacc.SolveDirectCSR(prob.Jacobian(ud), f.Scaled(-1))
		if err != nil {
			log.Fatal(err)
		}
		ud.Add(step)
	}
	fmt.Printf("digital Newton: %d iterations to machine precision\n", iters)

	var worst float64
	for i := range u {
		if e := math.Abs(u[i] - ud[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("max |analog − digital| over all unknowns: %.2e\n\n", worst)
	fmt.Printf("peak of the solution (grid center): u=%.6f\n", u[prob.GridDesc.Index(l/2, l/2, 0)])
	fmt.Println("each Newton step compiled a fresh Jacobian onto the chip; the inner")
	fmt.Println("solves used continuous-time gradient descent with residual refinement.")
}
