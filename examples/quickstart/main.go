// Quickstart: solve the paper's two-variable example (Equation 2 /
// Figure 5) on a simulated prototype chip, first with one analog run
// (ADC-limited precision), then with Algorithm 2 refinement (arbitrary
// precision from the same 8-bit converters).
package main

import (
	"fmt"
	"log"

	"analogacc"
)

func main() {
	// The fabricated 65 nm prototype: 4 macroblocks, 8-bit converters,
	// 20 kHz analog bandwidth.
	acc, _, err := analogacc.NewSimulated(analogacc.PrototypeChip())
	if err != nil {
		log.Fatal(err)
	}

	// A·u = b with A SPD: the chip integrates du/dt = b − A·u and
	// settles at u = A⁻¹·b.
	a := analogacc.MustCSR(2, []analogacc.COOEntry{
		{Row: 0, Col: 0, Val: 0.8}, {Row: 0, Col: 1, Val: 0.2},
		{Row: 1, Col: 0, Val: 0.2}, {Row: 1, Col: 1, Val: 0.6},
	})
	b := analogacc.VectorOf(0.5, 0.3)
	exact, err := analogacc.SolveDirectCSR(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact:            u = (%.9f, %.9f)\n", exact[0], exact[1])

	// One analog run: the result carries about one ADC's worth of bits.
	u, stats, err := acc.Solve(a, b, analogacc.SolveOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one analog run:   u = (%.9f, %.9f)   analog time %.2e s, %d chip runs\n",
		u[0], u[1], stats.AnalogTime, stats.Runs)

	// Algorithm 2: re-solve against the residual, building precision far
	// beyond the 8-bit ADC.
	u, stats, err = acc.SolveRefined(a, b, analogacc.SolveOptions{Tolerance: 1e-9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refined (Alg. 2): u = (%.9f, %.9f)   %d refinement passes, residual %.1e\n",
		u[0], u[1], stats.Refinements, stats.Residual)
}
