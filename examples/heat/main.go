// Heat: a time-dependent PDE integrated natively by the accelerator. The
// left branch of the paper's Figure 4 taxonomy turns a parabolic PDE into
// a system of ODEs by spatial discretization and hands it to an explicit
// solver — "e.g., RK4, analog". Here a cooling rod (1-D heat equation,
// two thermal eigenmodes) runs in the chip's ODE mode and is checked
// against the closed-form decay of the discrete modes; the wave equation
// follows as the hyperbolic sibling.
package main

import (
	"fmt"
	"log"
	"math"

	"analogacc"
	"analogacc/internal/pde"
)

func main() {
	spec := analogacc.PrototypeChip()
	spec.Macroblocks = 16 // 15 unknowns (+1 spare)
	spec.MulsPerMB = 4
	spec.FanoutsPerMB = 3
	spec.SharePerConverter = 1
	spec.ADCBits = 12
	spec.DACBits = 12
	acc, _, err := analogacc.NewSimulated(spec)
	if err != nil {
		log.Fatal(err)
	}

	// Rod with a warm fundamental and a ripple of the 3rd harmonic.
	heat, err := pde.NewHeatEigenmodes(15, map[int]float64{1: 0.8, 3: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	const tEnd = 0.004 // the k=3 mode decays ~9x faster: visible contrast
	traj, err := acc.SolveODE(heat.M, heat.Q, heat.U0, analogacc.ODEOptions{
		Duration:     tEnd,
		SamplePoints: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("1-D heat equation in the chip's native ODE mode (15 grid points)")
	fmt.Printf("value/time scaling: S=%.3g — %.2e analog s for %.0e problem s\n\n",
		traj.Scaling.S, traj.AnalogTime, tEnd)
	fmt.Println("   t        midpoint T   closed form   max |err|")
	for i, tt := range traj.Times {
		exact := heat.Exact(tt)
		var worst float64
		for j := range exact {
			if e := math.Abs(traj.States[i][j] - exact[j]); e > worst {
				worst = e
			}
		}
		mid := heat.Grid.N() / 2
		fmt.Printf("  %7.5f   %+.5f     %+.5f      %.5f\n", tt, traj.States[i][mid], exact[mid], worst)
	}

	// The hyperbolic sibling: one eigenmode of the wave equation, run for
	// one full period — it must come back where it started.
	wave, err := pde.NewWaveEigenmode(7, 1, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	specW := analogacc.PrototypeChip()
	specW.Macroblocks = 14
	specW.MulsPerMB = 4
	specW.FanoutsPerMB = 3
	specW.SharePerConverter = 1
	specW.ADCBits = 12
	specW.DACBits = 12
	accW, _, err := analogacc.NewSimulated(specW)
	if err != nil {
		log.Fatal(err)
	}
	period := 2 * math.Pi / wave.Omega()
	// The velocity states swing up to amp·ω ≈ 1.6, well beyond the
	// displacement amplitude: solution scaling must cover them.
	wtraj, err := accW.SolveODE(wave.M, analogacc.NewVector(wave.M.Dim()), wave.U0, analogacc.ODEOptions{
		Duration:     period,
		SamplePoints: 12,
		Sigma:        0.6 * wave.Omega(),
	})
	if err != nil {
		log.Fatal(err)
	}
	start := wtraj.States[0][3]
	end := wtraj.States[len(wtraj.States)-1][3]
	fmt.Printf("\nwave equation, one eigenperiod (%.4g problem s): u[3] %+.4f -> %+.4f (return error %.4f)\n",
		period, start, end, math.Abs(end-start))
	fmt.Println("parabolic decay and hyperbolic oscillation both run as continuous-time")
	fmt.Println("trajectories — no steady state involved, the chip's original purpose.")
}
