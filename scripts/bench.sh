#!/bin/sh
# Regenerates a BENCH_*.json file deterministically from `go test -bench`:
# fixed benchtime, fixed benchmark selection, one JSON emitter. Custom
# b.ReportMetric values (configs/op, sweeps/op, ...) are captured alongside
# the standard ns/bytes/allocs columns.
#
# Usage: scripts/bench.sh <suite> [benchtime]
#
#   scripts/bench.sh 1       # BENCH_1.json: circuit hot-loop microbenchmarks
#   scripts/bench.sh 3 10x   # BENCH_3.json: decomposition scaling
#   scripts/bench.sh 4       # BENCH_4.json: session cache + batch solves
#   scripts/bench.sh 5       # BENCH_5.json: fused vs compiled step kernel
#   scripts/bench.sh 6       # BENCH_6.json: lane-batched vs sequential batch
#   scripts/bench.sh 7       # BENCH_7.json: federation zipf-load routing policies
#   scripts/bench.sh 8       # BENCH_8.json: micro-batching coalescer on a hot operator
#   scripts/bench.sh 9       # BENCH_9.json: operator registry by-reference wire path
set -eu
cd "$(dirname "$0")/.."

SUITE="${1:?usage: scripts/bench.sh <suite-number> [benchtime]}"
case "$SUITE" in
1)
	PKG=./internal/circuit
	BENCH='Eval|Step|RunUntilSettled'
	BENCHTIME="${2:-1s}"
	DESC="internal/circuit hot loop (32x32 Poisson fig8 netlist)"
	;;
3)
	PKG=./internal/core
	BENCH='Decomposed'
	BENCHTIME="${2:-5x}"
	DESC="block-Jacobi decomposition: sequential one-chip vs parallel pinned sessions at 1/2/4/8 workers (8 blocks, 4 distinct groups)"
	;;
4)
	PKG=./internal/serve
	BENCH='PoolCheckout|BatchSolve16|SequentialSolve16'
	BENCHTIME="${2:-20x}"
	DESC="session cache + batch solves: warm vs cold pool checkout (configs/hits per op) and batch-of-16 vs 16 sequential sessions (rescales per op)"
	;;
5)
	PKG=./internal/circuit
	BENCH='(Eval|Step)(32|128)'
	BENCHTIME="${2:-1s}"
	DESC="fused kernel vs compiled op stream: eval and RK4 step on the fig8 Poisson netlist at 32x32 (serial) and 128x128 (level-parallel, 1/2/4 workers)"
	;;
6)
	PKG=./internal/circuit
	BENCH='Batch32'
	BENCHTIME="${2:-2s}"
	DESC="lane-batched fused engine vs sequential batch path: 16 solve instances on the 32x32 Poisson fig8 netlist, one RK4 step and one 50-step settle segment, as a single 16-lane run vs sixteen scalar fused runs"
	;;
7)
	PKG=./internal/federation
	BENCH='Zipf'
	BENCHTIME="${2:-3x}"
	DESC="zipf-operator load on a 3-node in-process federation: fingerprint-affinity routing vs affinity-disabled (random member) vs single node — cluster session-cache hit rate and p50/p99 latency"
	;;
8)
	PKG=./internal/serve
	BENCH='HotOperator16|SolveRoundTrip'
	BENCHTIME="${2:-600x}"
	DESC="dynamic micro-batching: 16 workers hammering one hot operator through the HTTP path, default coalescing window vs disabled (solves/s, wave occupancy, coalesced fraction), plus the single-stream round-trip allocation probe"
	;;
9)
	PKG=./internal/serve
	BENCH='RegistryRequestBytes|HotOperatorBy|JobWALBytes'
	BENCHTIME="${2:-100x}"
	DESC="operator registry by-reference wire path: encoded request bytes for the n=1024 2-D Poisson operator by value vs by fingerprint, hot-operator p50/p99 latency and solves/s both ways over HTTP, and durable-job WAL bytes per job after the submit-time payload rewrite"
	;;
*)
	echo "bench.sh: unknown suite $SUITE (known: 1, 3, 4, 5, 6, 7, 8, 9)" >&2
	exit 2
	;;
esac
OUT="BENCH_${SUITE}.json"

RAW=$(go test "$PKG" -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" -benchmem)
echo "$RAW"

echo "$RAW" | awk -v host="$(uname -sm)" -v go="$(go env GOVERSION)" -v desc="$DESC" '
BEGIN {
	print "{"
	printf "  \"suite\": \"%s\",\n", desc
	printf "  \"go\": \"%s\",\n", go
	printf "  \"host\": \"%s\",\n", host
	print "  \"benchmarks\": ["
	first = 1
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	ns = ""; bytes = ""; allocs = ""; extras = ""
	# Fields after the iteration count come in value-unit pairs; standard
	# units get their own keys, anything else (ReportMetric) is kept under
	# its unit name with / mapped to _per_.
	for (i = 3; i < NF; i += 2) {
		val = $i; unit = $(i + 1)
		if (unit == "ns/op") ns = val
		else if (unit == "B/op") bytes = val
		else if (unit == "allocs/op") allocs = val
		else {
			key = unit
			gsub(/\//, "_per_", key)
			extras = extras sprintf(", \"%s\": %s", key, val)
		}
	}
	if (!first) printf ",\n"
	first = 0
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}", \
		name, $2, ns, bytes, allocs, extras
}
END {
	print "\n  ]"
	print "}"
}' > "$OUT"

echo "wrote $OUT"
