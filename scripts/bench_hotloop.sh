#!/bin/sh
# Runs the analog hot-loop micro-benchmarks (eval / step / settle on the
# fig8-style 32x32 Poisson netlist, reference vs compiled engine) and
# records the results as JSON in BENCH_1.json at the repo root.
#
# Usage: scripts/bench_hotloop.sh [benchtime]
set -eu
cd "$(dirname "$0")/.."
BENCHTIME="${1:-1s}"

RAW=$(go test ./internal/circuit -run '^$' \
	-bench 'Eval|Step|RunUntilSettled' -benchtime "$BENCHTIME" -benchmem)
echo "$RAW"

echo "$RAW" | awk -v host="$(uname -sm)" -v go="$(go env GOVERSION)" '
BEGIN {
	print "{"
	printf "  \"suite\": \"internal/circuit hot loop (32x32 Poisson fig8 netlist)\",\n"
	printf "  \"go\": \"%s\",\n", go
	printf "  \"host\": \"%s\",\n", host
	print "  \"benchmarks\": ["
	first = 1
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (!first) printf ",\n"
	first = 0
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
		name, $2, $3, $5, $7
}
END {
	print "\n  ]"
	print "}"
}' > BENCH_1.json

echo "wrote BENCH_1.json"
