#!/bin/sh
# Back-compat wrapper: the hot-loop suite now lives in scripts/bench.sh as
# suite 1 (same benchmarks, same JSON shape, same BENCH_1.json output).
#
# Usage: scripts/bench_hotloop.sh [benchtime]
set -eu
exec "$(dirname "$0")/bench.sh" 1 "${1:-1s}"
