// Command smoke is the CI end-to-end gate for the serve subsystem: it
// starts a real alad daemon on a random port, solves the paper's
// Equation 2 system through serve.Client, scrapes /metrics to confirm the
// solve counter moved, optionally round-trips alasolve -server, SIGTERMs
// the daemon and asserts a clean drain — then runs the crash-replay
// gauntlet: submit an async job against a journal-backed daemon, SIGKILL
// it mid-solve, restart on the same store, and assert the job completes
// exactly once with a bit-identical solution. Run by scripts/ci.sh:
//
//	go run ./scripts/smoke -alad /tmp/alad [-alasolve /tmp/alasolve]
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"time"

	"analogacc/internal/la"
	"analogacc/internal/serve"
	"analogacc/internal/solvers"
)

// daemon wraps one running alad process: started on a random port, its
// stderr forwarded and watched for the listen announcement and the
// clean-drain line.
type daemon struct {
	cmd     *exec.Cmd
	addr    string
	drained chan bool
}

// startDaemon launches alad with the given extra flags (every daemon
// gets -addr 127.0.0.1:0) and waits for it to announce its port.
func startDaemon(aladPath string, extra ...string) *daemon {
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(aladPath, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		die("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		die("starting alad: %v", err)
	}
	d := &daemon{cmd: cmd, drained: make(chan bool, 1)}
	addrCh := make(chan string, 1)
	go func() {
		sawDrain := false
		listenRe := regexp.MustCompile(`listening on (\S+)`)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			fmt.Fprintf(os.Stderr, "[alad %d] %s\n", cmd.Process.Pid, line)
			if m := listenRe.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
			if strings.Contains(line, "drained, bye") {
				sawDrain = true
			}
		}
		d.drained <- sawDrain
	}()
	select {
	case d.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		die("alad never announced its listen address")
	}
	return d
}

func (d *daemon) client() *serve.Client { return serve.NewClient(d.addr) }

// terminate SIGTERMs the daemon and asserts a clean, logged drain.
//
// Order matters: wait for the log scanner's EOF (the child exiting
// closes its stderr, so EOF means every line was read) before calling
// Wait. Calling Wait first closes the parent's pipe end on process
// exit and can drop the final buffered lines — losing "drained, bye"
// and failing the assertion spuriously.
func (d *daemon) terminate() {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		die("sigterm: %v", err)
	}
	select {
	case sawDrain := <-d.drained:
		if err := d.cmd.Wait(); err != nil {
			die("alad exited dirty: %v", err)
		}
		if !sawDrain {
			die("alad exited without logging a clean drain")
		}
	case <-time.After(30 * time.Second):
		die("alad did not exit within the drain budget")
	}
}

// kill SIGKILLs the daemon: the crash the journal must survive.
func (d *daemon) kill() {
	if err := d.cmd.Process.Kill(); err != nil {
		die("sigkill: %v", err)
	}
	<-d.drained
	d.cmd.Wait()
}

func eq2Request() serve.SolveRequest {
	return serve.SolveRequest{
		Backend: "analog-refined",
		N:       2,
		A: []serve.Entry{
			{Row: 0, Col: 0, Val: 0.8}, {Row: 0, Col: 1, Val: 0.2},
			{Row: 1, Col: 0, Val: 0.2}, {Row: 1, Col: 1, Val: 0.6},
		},
		B:   []float64{0.5, 0.3},
		Tol: 1e-8,
	}
}

func main() {
	aladPath := flag.String("alad", "", "path to the alad binary")
	alasolvePath := flag.String("alasolve", "", "path to the alasolve binary (optional)")
	flag.Parse()
	if *aladPath == "" {
		die("usage: smoke -alad <path> [-alasolve <path>]")
	}

	// 1. Start alad on a random port with a tiny warm pool. -max-dim 8
	// keeps the largest chip class small so step 4 can exercise the
	// decomposed fan-out path with a modest n=16 system; -engine fused is
	// the lane-capable kernel, so step 3.5's batch must report settling
	// lane-parallel. The widened coalescing window makes step 3.7
	// deterministic on a loaded CI box: concurrent requests that arrive a
	// few hundred microseconds apart still land in one wave (it costs the
	// other solo steps at most 5ms each).
	d := startDaemon(*aladPath, "-pool", "1", "-warm", "2", "-queue", "8", "-max-dim", "8", "-engine", "fused",
		"-coalesce-window", "5ms")
	defer d.cmd.Process.Kill()
	client := d.client()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := client.Healthz(ctx); err != nil {
		die("healthz: %v", err)
	}

	// 2. Solve Equation 2 (the paper's 2x2 system) through serve.Client.
	resp, err := client.Solve(ctx, eq2Request())
	if err != nil {
		die("solve: %v", err)
	}
	want := []float64{0.24 / 0.44, 0.14 / 0.44}
	for i := range want {
		if math.Abs(resp.U[i]-want[i]) > 1e-6 {
			die("u[%d] = %v, want %v", i, resp.U[i], want[i])
		}
	}
	if resp.Analog == nil || resp.Analog.AnalogSeconds <= 0 {
		die("no analog cost accounting in response: %+v", resp)
	}
	fmt.Fprintf(os.Stderr, "[smoke] solve ok: u=%v residual=%.3g analog=%.3es\n",
		resp.U, resp.Residual, resp.Analog.AnalogSeconds)

	// 3. Scrape /metrics: the solve counter must have incremented.
	text, err := client.Metrics(ctx)
	if err != nil {
		die("metrics: %v", err)
	}
	for _, needle := range []string{
		`alad_solves_total{backend="analog-refined"} 1`,
		"alad_analog_seconds_total",
		"alad_request_seconds_count 1",
	} {
		if !strings.Contains(text, needle) {
			die("metrics missing %q", needle)
		}
	}
	fmt.Fprintf(os.Stderr, "[smoke] metrics ok\n")

	// 3.5. Session cache: re-solving the same matrix must land on the chip
	// that still holds it programmed, and a batch request must amortize one
	// programming across its right-hand sides. Both show up in /metrics.
	if _, err := client.Solve(ctx, eq2Request()); err != nil {
		die("repeat solve: %v", err)
	}
	batchResp, err := client.SolveBatch(ctx, serve.BatchSolveRequest{
		Backend: "analog-refined",
		N:       2,
		A: []serve.Entry{
			{Row: 0, Col: 0, Val: 0.8}, {Row: 0, Col: 1, Val: 0.2},
			{Row: 1, Col: 0, Val: 0.2}, {Row: 1, Col: 1, Val: 0.6},
		},
		RHS: [][]float64{{0.5, 0.3}, {-0.2, 0.4}, {0.1, -0.6}},
		Tol: 1e-8,
	})
	if err != nil {
		die("batch solve: %v", err)
	}
	if len(batchResp.Items) != 3 {
		die("batch returned %d items, want 3", len(batchResp.Items))
	}
	for i := range want {
		if math.Abs(batchResp.Items[0].U[i]-want[i]) > 1e-6 {
			die("batch u[%d] = %v, want %v", i, batchResp.Items[0].U[i], want[i])
		}
	}
	// The fused engine must have settled the batch as one 3-wide lane
	// wave, not by silently falling back to the sequential path; every
	// item reports the wave width it rode.
	for k, it := range batchResp.Items {
		if it.Analog == nil || it.Analog.Lanes != len(batchResp.Items) {
			die("batch item %d did not settle lane-parallel: analog=%+v", k, it.Analog)
		}
	}
	text, err = client.Metrics(ctx)
	if err != nil {
		die("metrics after batch: %v", err)
	}
	if !strings.Contains(text, "alad_batch_rhs_total 3") {
		die("metrics missing alad_batch_rhs_total 3")
	}
	hitsRe := regexp.MustCompile(`alad_session_cache_hits_total (\d+)`)
	m := hitsRe.FindStringSubmatch(text)
	if m == nil || m[1] == "0" {
		die("session cache never hit: %q in metrics", hitsRe.String())
	}
	fmt.Fprintf(os.Stderr, "[smoke] session cache ok: hits=%s, batch of %d served at %d lanes\n",
		m[1], len(batchResp.Items), batchResp.Items[0].Analog.Lanes)

	// 3.7. Micro-batching coalescer: eight concurrent identical solo
	// solves of a fresh operator (n=8, so the settle is long enough for
	// genuine overlap) must share lane waves instead of settling one at
	// a time on the single chip. The first request may win the chip
	// alone, but the rest pile into a shared wave while it holds it, so
	// a majority must report wave_lanes > 1, every residual must clear
	// the tolerance, and — packing independence — every lane's answer
	// must be bit-identical to every other's.
	var (
		coWG    sync.WaitGroup
		coMu    sync.Mutex
		coErr   error
		shared  int
		coResps [8]*serve.SolveResponse
	)
	for i := range coResps {
		coWG.Add(1)
		go func(i int) {
			defer coWG.Done()
			r, err := client.Solve(ctx, tridiag(8, 4, 1e-8))
			coMu.Lock()
			defer coMu.Unlock()
			if err != nil && coErr == nil {
				coErr = err
				return
			}
			coResps[i] = r
			if r != nil && r.Coalesced && r.WaveLanes > 1 {
				shared++
			}
		}(i)
	}
	coWG.Wait()
	if coErr != nil {
		die("coalesced solve: %v", coErr)
	}
	if shared < 2 {
		die("coalescer never shared a wave: %d/8 requests report wave_lanes > 1", shared)
	}
	for i, r := range coResps {
		if r.Residual > 1e-6 {
			die("coalesced solve %d residual %v", i, r.Residual)
		}
		for j := range coResps[0].U {
			if r.U[j] != coResps[0].U[j] {
				die("coalesced u[%d][%d] = %v, lane 0 got %v (lanes not bit-identical)", i, j, r.U[j], coResps[0].U[j])
			}
		}
	}
	text, err = client.Metrics(ctx)
	if err != nil {
		die("metrics after coalesced solves: %v", err)
	}
	waveRe := regexp.MustCompile(`alad_wave_lanes_count (\d+)`)
	coalescedRe := regexp.MustCompile(`alad_coalesced_requests_total (\d+)`)
	wm, cm := waveRe.FindStringSubmatch(text), coalescedRe.FindStringSubmatch(text)
	if wm == nil || wm[1] == "0" {
		die("wave occupancy histogram never observed a wave: %q", waveRe.String())
	}
	if cm == nil || cm[1] == "0" {
		die("coalesced request counter never moved: %q", coalescedRe.String())
	}
	fmt.Fprintf(os.Stderr, "[smoke] coalescer ok: %d/8 requests shared waves, %s waves fired, %s coalesced\n",
		shared, wm[1], cm[1])

	// 4. Oversized solve: n=16 against -max-dim 8 is bigger than any chip
	// class, so the daemon must partition it and fan the blocks out through
	// the decomposition engine instead of rejecting it as too_large.
	const big = 16
	var bigA []serve.Entry
	bigB := make([]float64, big)
	for i := 0; i < big; i++ {
		bigA = append(bigA, serve.Entry{Row: i, Col: i, Val: 4})
		if i > 0 {
			bigA = append(bigA, serve.Entry{Row: i, Col: i - 1, Val: -1})
			bigA = append(bigA, serve.Entry{Row: i - 1, Col: i, Val: -1})
		}
		bigB[i] = 1 + 0.25*float64(i%3)
	}
	bigResp, err := client.Solve(ctx, serve.SolveRequest{
		Backend: "analog-refined", N: big, A: bigA, B: bigB, Tol: 1e-6,
	})
	if err != nil {
		die("oversized solve: %v", err)
	}
	if bigResp.Backend != "decomposed" {
		die("oversized solve ran on %q, want decomposed", bigResp.Backend)
	}
	dec := bigResp.Decompose
	if dec == nil || dec.Blocks < 2 || dec.Sweeps < 1 || dec.Chips < 1 {
		die("oversized solve missing decompose stats: %+v", dec)
	}
	ents := make([]la.COOEntry, len(bigA))
	for i, e := range bigA {
		ents[i] = la.COOEntry{Row: e.Row, Col: e.Col, Val: e.Val}
	}
	ref, err := solvers.SolveCSRDirect(la.MustCSR(big, ents), la.Vector(bigB))
	if err != nil {
		die("digital reference: %v", err)
	}
	for i := range ref {
		if math.Abs(bigResp.U[i]-ref[i]) > 1e-5 {
			die("oversized u[%d] = %v, digital reference %v", i, bigResp.U[i], ref[i])
		}
	}
	text, err = client.Metrics(ctx)
	if err != nil {
		die("metrics after oversized solve: %v", err)
	}
	for _, needle := range []string{
		"alad_decomposed_total 1",
		`alad_solves_total{backend="decomposed"} 1`,
		"alad_sweep_seconds_count",
	} {
		if !strings.Contains(text, needle) {
			die("metrics missing %q after oversized solve", needle)
		}
	}
	fmt.Fprintf(os.Stderr, "[smoke] oversized solve ok: blocks=%d sweeps=%d chips=%d configs=%d reuse=%d\n",
		dec.Blocks, dec.Sweeps, dec.Chips, dec.Configs, dec.ReuseHits)

	// 5. Optionally, the CLI's remote path against the same daemon.
	if *alasolvePath != "" {
		out, err := exec.Command(*alasolvePath, "-server", d.addr, "-f", "testdata/eq2.txt").CombinedOutput()
		if err != nil {
			die("alasolve -server: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "served by") {
			die("alasolve -server did not go remote:\n%s", out)
		}
		fmt.Fprintf(os.Stderr, "[smoke] alasolve -server ok\n")

		// Batch mode over the wire: two right-hand sides, one programming.
		rhsFile := fmt.Sprintf("%s/smoke-rhs-%d.txt", os.TempDir(), os.Getpid())
		if err := os.WriteFile(rhsFile, []byte("0.5 0.3\n-0.2 0.4\n"), 0o644); err != nil {
			die("writing rhs file: %v", err)
		}
		defer os.Remove(rhsFile)
		out, err = exec.Command(*alasolvePath, "-server", d.addr, "-f", "testdata/eq2.txt", "-rhs-file", rhsFile).CombinedOutput()
		if err != nil {
			die("alasolve -rhs-file: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "# rhs 1") || !strings.Contains(string(out), "2 rhs served by") {
			die("alasolve -rhs-file output malformed:\n%s", out)
		}
		// Both right-hand sides must ride one 2-wide lane wave on the
		// daemon's fused engine, and the per-item cost line says so.
		if !strings.Contains(string(out), "2 lanes") {
			die("alasolve -rhs-file did not settle lane-parallel:\n%s", out)
		}
		fmt.Fprintf(os.Stderr, "[smoke] alasolve -rhs-file ok (lane-parallel)\n")

		// Async round trip: submit with -async, then fetch the result by
		// job ID with -wait.
		out, err = exec.Command(*alasolvePath, "-server", d.addr, "-f", "testdata/eq2.txt", "-async", "-q").CombinedOutput()
		if err != nil {
			die("alasolve -async: %v\n%s", err, out)
		}
		jobID := strings.TrimSpace(string(out))
		if !strings.HasPrefix(jobID, "j-") {
			die("alasolve -async printed %q, want a job ID", jobID)
		}
		out, err = exec.Command(*alasolvePath, "-server", d.addr, "-job", jobID, "-wait").CombinedOutput()
		if err != nil {
			die("alasolve -job -wait: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "done") || !strings.Contains(string(out), "u[0]") {
			die("alasolve -job -wait output malformed:\n%s", out)
		}
		fmt.Fprintf(os.Stderr, "[smoke] alasolve -async / -job ok (%s)\n", jobID)
	}

	// 6. SIGTERM and assert a clean drain.
	d.terminate()
	fmt.Fprintf(os.Stderr, "[smoke] drain ok\n")

	// 7. Crash replay: the durable job queue's reason to exist. A
	// journal-backed daemon accepts a job, gets SIGKILLed while the job
	// is mid-flight (held there by -job-exec-delay), and a fresh daemon
	// on the same store must finish it — exactly once, bit-identically,
	// with the interrupted attempt visible in the attempt count.
	crashReplay(ctx, *aladPath)
	fmt.Fprintf(os.Stderr, "[smoke] crash replay ok\n")

	// 8. Federation gauntlet: a 3-node fingerprint-affinity cluster must
	// route repeat traffic to the resident node, survive the affinity
	// owner's SIGKILL via rendezvous fallback, and scatter-gather an
	// oversized solve bit-identically to the single-node path.
	federationGauntlet(ctx, *aladPath, *alasolvePath)
	fmt.Fprintf(os.Stderr, "[smoke] federation ok\n")
}

// pickPort reserves a free loopback port by binding and releasing it;
// federation daemons need their address known up front so every node can
// be told its peers' URLs before any of them has started.
func pickPort() int {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die("picking port: %v", err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	ln.Close()
	return port
}

// waitMetric polls /metrics until the needle appears (the federation
// membership view converges one poll cycle after boot).
func waitMetric(ctx context.Context, c *serve.Client, needle string) {
	deadline := time.Now().Add(15 * time.Second)
	for {
		text, err := c.Metrics(ctx)
		if err == nil && strings.Contains(text, needle) {
			return
		}
		if time.Now().After(deadline) {
			die("metrics never showed %q", needle)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// tridiag builds the n-order tridiagonal test operator shared by the
// federation steps: distinct fingerprint per (diag, n), cheap to solve.
func tridiag(n int, diag float64, tol float64) serve.SolveRequest {
	req := serve.SolveRequest{Backend: "analog-refined", N: n, Tol: tol}
	for i := 0; i < n; i++ {
		req.A = append(req.A, serve.Entry{Row: i, Col: i, Val: diag})
		if i > 0 {
			req.A = append(req.A, serve.Entry{Row: i, Col: i - 1, Val: -1})
			req.A = append(req.A, serve.Entry{Row: i - 1, Col: i, Val: -1})
		}
		req.B = append(req.B, 1+0.25*float64(i%3))
	}
	return req
}

func federationGauntlet(ctx context.Context, aladPath, alasolvePath string) {
	// Boot three federated daemons with tiny single-chip pools. Each
	// advertises a pre-picked port and lists the other two as peers.
	const n = 3
	urls := make([]string, n)
	for i := range urls {
		urls[i] = fmt.Sprintf("http://127.0.0.1:%d", pickPort())
	}
	nodes := make([]*daemon, n)
	for i := range nodes {
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		nodes[i] = startDaemon(aladPath,
			"-addr", strings.TrimPrefix(urls[i], "http://"),
			"-pool", "1", "-warm", "2", "-max-dim", "8", "-engine", "fused",
			"-federation", "-advertise", urls[i], "-peers", strings.Join(peers, ","),
			"-poll-interval", "100ms")
		defer nodes[i].cmd.Process.Kill()
	}
	byName := func(name string) int {
		for i, u := range urls {
			if u == name {
				return i
			}
		}
		die("federation: response served by unknown node %q", name)
		return -1
	}
	clients := make([]*serve.Client, n)
	for i := range clients {
		clients[i] = serve.NewClient(urls[i])
		waitMetric(ctx, clients[i], "alad_fed_cluster_nodes 3")
	}

	// Same fingerprint through two different entry nodes: both must land
	// on the rendezvous owner, and the second solve must be a warm hit on
	// the owner's already-programmed chip.
	req := tridiag(4, 4.0, 1e-8)
	resp1, err := clients[0].Solve(ctx, req)
	if err != nil {
		die("federation: solve via node0: %v", err)
	}
	owner := byName(resp1.ServedBy)
	ownerStats0, err := clients[owner].PeerStats(ctx)
	if err != nil {
		die("federation: owner stats: %v", err)
	}
	entry := (owner + 1) % n // guaranteed not the owner
	resp2, err := clients[entry].Solve(ctx, req)
	if err != nil {
		die("federation: solve via node%d: %v", entry, err)
	}
	if resp2.ServedBy != resp1.ServedBy {
		die("federation: same operator served by %s then %s", resp1.ServedBy, resp2.ServedBy)
	}
	if resp2.Affinity != "hit" {
		die("federation: cross-node repeat got affinity %q, want hit", resp2.Affinity)
	}
	ownerStats1, err := clients[owner].PeerStats(ctx)
	if err != nil {
		die("federation: owner stats after repeat: %v", err)
	}
	if ownerStats1.CacheHits <= ownerStats0.CacheHits {
		die("federation: owner cache hits did not move (%d -> %d): repeat was not a warm hit",
			ownerStats0.CacheHits, ownerStats1.CacheHits)
	}
	text, err := clients[entry].Metrics(ctx)
	if err != nil {
		die("federation: entry metrics: %v", err)
	}
	if !regexp.MustCompile(`alad_fed_routed_total\{route="hit"\} [1-9]`).MatchString(text) {
		die("federation: entry node missing routed hit counter")
	}
	if !strings.Contains(text, "alad_fed_cluster_cache_hit_rate") {
		die("federation: cluster hit rate gauge missing from /metrics")
	}
	fmt.Fprintf(os.Stderr, "[smoke] federation warm hit ok: owner=%s hits %d -> %d\n",
		resp1.ServedBy, ownerStats0.CacheHits, ownerStats1.CacheHits)

	// Register-then-solve across nodes: upload an operator once through
	// node0 (the router lands it on its rendezvous owner), then solve by
	// fingerprint through a different node. The warm request must carry
	// zero matrix bytes, answer bit-identically to the by-value solve,
	// and move the owning node's registry counters.
	regReq := tridiag(4, 5.0, 1e-8)
	regByVal, err := clients[1].Solve(ctx, regReq)
	if err != nil {
		die("federation: by-value baseline: %v", err)
	}
	info, err := clients[0].RegisterOperator(ctx, serve.OperatorRequest{N: regReq.N, A: regReq.A})
	if err != nil {
		die("federation: register operator via node0: %v", err)
	}
	regOwner := byName(info.ServedBy)
	refReq := serve.SolveRequest{Backend: "analog-refined", Fingerprint: info.Fingerprint, B: regReq.B, Tol: regReq.Tol}
	rawRef, err := json.Marshal(refReq)
	if err != nil {
		die("federation: encoding by-ref request: %v", err)
	}
	if strings.Contains(string(rawRef), `"A"`) || len(rawRef) > 512 {
		die("federation: by-ref request still carries matrix bytes (%dB): %s", len(rawRef), rawRef)
	}
	regByRef, err := clients[2].Solve(ctx, refReq)
	if err != nil {
		die("federation: by-ref solve via node2: %v", err)
	}
	if regByRef.ServedBy != info.ServedBy {
		die("federation: by-ref solve served by %s, operator lives on %s", regByRef.ServedBy, info.ServedBy)
	}
	for i := range regByVal.U {
		if regByRef.U[i] != regByVal.U[i] {
			die("federation: by-ref u[%d] = %v, by-value %v — must be bit-identical", i, regByRef.U[i], regByVal.U[i])
		}
	}
	regText, err := clients[regOwner].Metrics(ctx)
	if err != nil {
		die("federation: owner metrics: %v", err)
	}
	if !strings.Contains(regText, "alad_registry_operators 1") {
		die("federation: owner registry gauge missing/wrong after registration")
	}
	if !regexp.MustCompile(`alad_registry_hits_total [1-9]`).MatchString(regText) {
		die("federation: owner registry hits did not move on the by-ref solve")
	}
	fmt.Fprintf(os.Stderr, "[smoke] federation register-then-solve ok: owner=%s by-ref request %dB, bit-identical\n",
		info.ServedBy, len(rawRef))

	// alasolve provenance: the multi-endpoint client must print which
	// node served and how the request was routed.
	if alasolvePath != "" {
		out, err := exec.Command(alasolvePath,
			"-server", strings.Join(urls, ","), "-f", "testdata/eq2.txt").CombinedOutput()
		if err != nil {
			die("alasolve federation: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "served-by=") || !strings.Contains(string(out), "affinity=") {
			die("alasolve federation output missing routing provenance:\n%s", out)
		}
		fmt.Fprintf(os.Stderr, "[smoke] alasolve federation provenance ok\n")
	}

	// Oversized scatter-gather: n=16 against -max-dim 8 pools decomposes
	// across the cluster's chips and must answer bit-identically to a
	// standalone daemon with the same pool knobs solving it alone.
	big := tridiag(16, 4.0, 1e-6)
	solo := startDaemon(aladPath, "-pool", "1", "-warm", "2", "-max-dim", "8", "-engine", "fused")
	defer solo.cmd.Process.Kill()
	ref, err := solo.client().Solve(ctx, big)
	if err != nil {
		die("federation: standalone oversized solve: %v", err)
	}
	fed, err := clients[entry].Solve(ctx, big)
	if err != nil {
		die("federation: oversized solve: %v", err)
	}
	if fed.Backend != "decomposed" || ref.Backend != "decomposed" {
		die("federation: oversized solves ran on %q / %q, want decomposed", fed.Backend, ref.Backend)
	}
	if fed.Decompose == nil || fed.Decompose.Chips < 2 {
		die("federation: oversized solve did not scatter: %+v", fed.Decompose)
	}
	for i := range ref.U {
		if fed.U[i] != ref.U[i] {
			die("federation: scattered u[%d] = %v, standalone %v — must be bit-identical", i, fed.U[i], ref.U[i])
		}
	}
	solo.terminate()
	fmt.Fprintf(os.Stderr, "[smoke] federation scatter-gather ok: %d blocks on %d chips, bit-identical\n",
		fed.Decompose.Blocks, fed.Decompose.Chips)

	// SIGKILL the affinity owner: the next solve for its operator must
	// re-route to the rendezvous fallback instead of failing.
	nodes[owner].kill()
	fmt.Fprintf(os.Stderr, "[smoke] killed affinity owner %s\n", urls[owner])
	resp3, err := clients[entry].Solve(ctx, req)
	if err != nil {
		die("federation: solve after owner kill: %v", err)
	}
	if resp3.ServedBy == urls[owner] {
		die("federation: dead owner %s answered", urls[owner])
	}
	// The label races the health poll: before the poll notices the kill
	// the forward fails over ("fallback"); after, the dead node drops out
	// of the HRW candidate set and the promoted survivor is the operator's
	// new legitimate owner ("hit", or "local" if that is the entry node).
	// Any of the three is a correct re-route — only the dead owner
	// answering, or the solve failing outright, would be wrong.
	switch resp3.Affinity {
	case "fallback", "local", "hit":
	default:
		die("federation: post-kill affinity %q, want fallback/hit/local", resp3.Affinity)
	}
	fmt.Fprintf(os.Stderr, "[smoke] federation failover ok: served-by=%s affinity=%s\n",
		resp3.ServedBy, resp3.Affinity)

	// Surviving nodes still drain clean.
	for i, d := range nodes {
		if i != owner {
			d.terminate()
		}
	}
}

func crashReplay(ctx context.Context, aladPath string) {
	dir, err := os.MkdirTemp("", "alad-smoke-jobs-")
	if err != nil {
		die("mkdir store: %v", err)
	}
	defer os.RemoveAll(dir)
	store := filepath.Join(dir, "jobs.wal")

	// First incarnation: one worker, and a 3s fault-injection hold
	// between lease and execution so the SIGKILL reliably lands while
	// the job is non-terminal.
	d1 := startDaemon(aladPath,
		"-pool", "1", "-warm", "2", "-max-dim", "8", "-engine", "fused",
		"-store", store, "-job-workers", "1", "-job-lease", "2s", "-job-exec-delay", "3s")
	defer d1.cmd.Process.Kill()
	c1 := d1.client()

	// The synchronous answer is the reference the replayed job must
	// reproduce bit-for-bit (the simulation is deterministic).
	ref, err := c1.Solve(ctx, eq2Request())
	if err != nil {
		die("crash: reference solve: %v", err)
	}

	req := eq2Request()
	st, err := c1.SubmitJob(ctx, serve.JobSubmitRequest{Solve: &req})
	if err != nil {
		die("crash: submit: %v", err)
	}
	jobID := st.ID

	// Wait for a worker to pick it up (leased or running), then pull the
	// plug while the exec-delay holds it mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := c1.Job(ctx, jobID, 0)
		if err != nil {
			die("crash: poll: %v", err)
		}
		if cur.State == "leased" || cur.State == "running" {
			break
		}
		if cur.State != "queued" {
			die("crash: job reached %s before the kill", cur.State)
		}
		if time.Now().After(deadline) {
			die("crash: job never left queued")
		}
		time.Sleep(20 * time.Millisecond)
	}
	d1.kill()
	fmt.Fprintf(os.Stderr, "[smoke] killed alad with job %s mid-flight\n", jobID)

	// Second incarnation on the same journal, no fault injection: boot
	// replay must reclaim the orphaned lease and finish the job.
	d2 := startDaemon(aladPath,
		"-pool", "1", "-warm", "2", "-max-dim", "8", "-engine", "fused",
		"-store", store, "-job-workers", "1", "-job-lease", "2s")
	defer d2.cmd.Process.Kill()
	c2 := d2.client()

	final, err := c2.WaitJob(ctx, jobID)
	if err != nil {
		die("crash: waiting for replayed job: %v", err)
	}
	if final.State != "done" {
		die("crash: replayed job finished %s (error %+v)", final.State, final.Error)
	}
	if final.Attempts != 2 {
		die("crash: replayed job took %d attempts, want 2 (one interrupted, one replayed)", final.Attempts)
	}
	var jobResp serve.SolveResponse
	if err := json.Unmarshal(final.Result, &jobResp); err != nil {
		die("crash: decoding job result: %v", err)
	}
	if len(jobResp.U) != len(ref.U) {
		die("crash: job answered %d values, reference %d", len(jobResp.U), len(ref.U))
	}
	for i := range ref.U {
		if jobResp.U[i] != ref.U[i] {
			die("crash: u[%d] = %v, reference %v — replayed result must be bit-identical", i, jobResp.U[i], ref.U[i])
		}
	}

	// Exactly-once: re-submitting the identical request must dedup onto
	// the finished job, not re-solve.
	dup, err := c2.SubmitJob(ctx, serve.JobSubmitRequest{Solve: &req})
	if err != nil {
		die("crash: duplicate submit: %v", err)
	}
	if dup.ID != jobID || !dup.Deduped {
		die("crash: duplicate submit answered %+v, want dedup onto %s", dup, jobID)
	}

	text, err := c2.Metrics(ctx)
	if err != nil {
		die("crash: metrics: %v", err)
	}
	for _, re := range []string{
		`alad_jobs_replayed_total [1-9]`,
		`alad_jobs_lease_expired_total [1-9]`,
		`alad_jobs_dedup_total [1-9]`,
		`alad_jobs_completed_total [1-9]`,
		`alad_jobs_state\{state="done"\} [1-9]`,
	} {
		if !regexp.MustCompile(re).MatchString(text) {
			die("crash: metrics missing %s", re)
		}
	}

	// And the journal-backed daemon still drains clean.
	d2.terminate()
}

func die(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "smoke: "+format+"\n", args...)
	os.Exit(1)
}
