#!/bin/sh
# Captures a CPU profile of the simulator's settle hot loop (the RK4 step
# kernel driven by RunUntilSettled) and prints the top functions. This is
# the workflow that motivated the fused step kernel: the profile shows
# where eval time goes per engine.
#
# Usage: scripts/profile.sh [bench-regex] [benchtime]
#
#   scripts/profile.sh                          # settle loop, compiled + reference
#   scripts/profile.sh 'Eval128Fused' 3s        # fused kernel eval at 128x128
#
# Artifacts land in profiles/: cpu.out (pprof), circuit.test (the binary
# needed to symbolise it). Inspect interactively with:
#
#   go tool pprof profiles/circuit.test profiles/cpu.out
#
# For a live service, cmd/alad exposes the same data over HTTP instead:
# start it with -pprof :6060 and use `go tool pprof http://host:6060/debug/pprof/profile`.
set -eu
cd "$(dirname "$0")/.."

BENCH="${1:-RunUntilSettled}"
BENCHTIME="${2:-1s}"
OUTDIR=profiles
mkdir -p "$OUTDIR"

go test ./internal/circuit -run '^$' -bench "$BENCH" -benchtime "$BENCHTIME" \
	-cpuprofile "$OUTDIR/cpu.out" -o "$OUTDIR/circuit.test"

echo
echo "=== top 15 by flat CPU time ==="
go tool pprof -top -nodecount=15 "$OUTDIR/circuit.test" "$OUTDIR/cpu.out"
echo
echo "wrote $OUTDIR/cpu.out (binary: $OUTDIR/circuit.test)"
