#!/bin/sh
# CI gate: vet plus the full test suite under the race detector.
# The -race run is what exercises the concurrent paths for real:
# internal/core's Farm (SolveDecomposedParallel) and internal/bench's
# runPoints/RunMany worker pools.
set -eux
cd "$(dirname "$0")/.."
go vet ./...
go build ./...
go test -race ./...
