#!/bin/sh
# CI gate: vet plus the full test suite under the race detector.
# The -race run is what exercises the concurrent paths for real:
# internal/core's Farm (SolveDecomposedParallel), internal/bench's
# runPoints/RunMany worker pools, and internal/serve's chip pool and
# admission queue (TestPoolStress fires more solvers than chips).
set -eux
cd "$(dirname "$0")/.."
UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
	echo "gofmt needed on:" >&2
	echo "$UNFORMATTED" >&2
	exit 1
fi
go vet ./...
go build ./...
go test -race ./...

# The fpdebug build tag swaps the fingerprint collision check from
# "trust the hash" to a full deep matrix comparison that panics on any
# mismatch. Running the core suite under it proves adoption and block
# grouping never pair a fingerprint with the wrong matrix.
go test -tags fpdebug ./internal/core

# The parallel decomposition engine is the newest concurrent path — pinned
# sessions, per-chip scratch, the Jacobi sweep barrier, and the pool-backed
# SessionProvider. Run its tests a second time under -race with -count=2 to
# shake out schedule-dependent interleavings the full-suite pass may miss.
go test -race -count=2 -run 'ParallelDecompose|PoolProvider|PoolTryCheckout|ServeDecomposed|FansOut' ./internal/core ./internal/serve

# Session-cache concurrency: fingerprint-aware Checkout/Checkin with mixed
# matrices races chip adoption against LRU eviction and drift invalidation.
go test -race -count=2 -run 'PoolAffinity|PoolLRU|PoolCalibrationDrift|PoolCacheStress|PoolPrefersBlank|SolveBatch' ./internal/core ./internal/serve

# Durable job queue: WAL replay, torn-tail and checksum handling, lease
# expiry determinism, fingerprint dedup, tenant fairness, and the worker
# loops — all schedule-sensitive, so run twice under -race. The serve-side
# job API pass covers the HTTP surface, adaptive Retry-After, and the
# client's 429 retry loop.
go test -race -count=2 ./internal/jobs
go test -race -count=2 -run 'Job|Retry|Busy' ./internal/serve

# Operator registry: concurrent register/lookup racing LRU and
# byte-cap eviction, journal replay with torn tails, and the
# by-reference ≡ by-value differentials across solve, batch,
# decomposed, async-job, and gzip-upload paths.
go test -race -count=2 -run 'TestRegistry|TestOperator' ./internal/serve

# Micro-batching coalescer: wave formation races enrollment against
# window close, full close, checkout-stall boarding, and per-member
# deadline abandonment — the churn test drives 96 requests over 4
# operators with mixed deadlines through 16 workers, twice under -race.
go test -race -count=2 -run 'TestCoalesce' ./internal/serve

# Federation router: rendezvous routing, concurrent membership polls,
# remote block scatter-gather, and the zipf load generator all mix
# goroutines with shared counters — run the whole package twice under
# -race on top of the full-suite pass.
go test -race -count=2 ./internal/federation

# End-to-end serve smoke: start a real alad daemon (-engine fused) on a
# random port, solve the Equation 2 system through serve.Client, scrape
# /metrics to confirm the solve counter moved, POST /v1/solve/batch and
# assert the items settled lane-parallel, round-trip alasolve -server,
# alasolve -rhs-file (which must also ride a lane wave), and the
# alasolve -async / -job flow, then SIGTERM and assert a clean drain.
# Finally the crash-replay gauntlet: submit a job against a journal-backed
# daemon, SIGKILL it mid-solve, restart on the same store, and assert the
# job completes exactly once, bit-identically, on attempt 2, with the
# replay/lease/dedup counters visible in /metrics. Then the federation
# gauntlet: a real 3-node cluster routes a repeat operator to its affinity
# owner from a different entry node (warm hit, cluster counters moving),
# alasolve prints served-by/affinity provenance, an oversized solve
# scatter-gathers across the cluster bit-identically to a standalone
# daemon, and SIGKILLing the affinity owner re-routes to the rendezvous
# fallback. See scripts/smoke/main.go.
BIN="${TMPDIR:-/tmp}/alad-smoke-$$"
mkdir -p "$BIN"
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN/alad" ./cmd/alad
go build -o "$BIN/alasolve" ./cmd/alasolve
go run ./scripts/smoke -alad "$BIN/alad" -alasolve "$BIN/alasolve"

# Engine equivalence: the fused kernel's parallel path is schedule-dependent
# by construction (per-level worker chunks) but must stay bit-identical to
# serial; -count=2 under -race shakes interleavings. The fuzz seed corpora
# replay the checked-in differential cases through all three engines and
# through lane widths 1/2/7/16 (16 is the AVX2 kernel path on amd64), and
# the core lane-batch differentials hold wave answers equal to scalar
# solves end-to-end.
go test -race -count=2 -run 'Fused|Lane|EngineEquivalence|Fuzz' ./internal/circuit
go test -race -count=2 -run 'Lane|SolveBatch' ./internal/core
