// Package analogacc is a full-system reproduction of "Evaluation of an
// Analog Accelerator for Linear Algebra" (ISCA 2016): a behavioural model
// of the continuous-time analog accelerator chip, the Table I instruction
// set it is driven by, and the host architecture that compiles systems of
// linear equations A·u = b onto it — value/time scaling, calibration,
// overflow-exception handling, Algorithm 2 precision refinement, domain
// decomposition, multigrid support, native ODE mode, and the nonlinear
// Newton extension — together with the paper's digital baselines and the
// benchmark harness that regenerates every figure and table of its
// evaluation.
//
// # Quick start
//
//	acc, _, err := analogacc.NewSimulated(analogacc.PrototypeChip())
//	if err != nil { ... }
//	a := analogacc.MustCSR(2, []analogacc.COOEntry{
//		{Row: 0, Col: 0, Val: 0.8}, {Row: 0, Col: 1, Val: 0.2},
//		{Row: 1, Col: 0, Val: 0.2}, {Row: 1, Col: 1, Val: 0.6},
//	})
//	b := analogacc.VectorOf(0.5, 0.3)
//	u, stats, err := acc.SolveRefined(a, b, analogacc.SolveOptions{Tolerance: 1e-7})
//
// The chip behind NewSimulated is a circuit-level behavioural simulation:
// it clips, latches overflow exceptions, quantizes through its converters,
// and settles at a rate set by its analog bandwidth. Solve times reported
// in Stats.AnalogTime are virtual analog seconds.
package analogacc

import (
	"analogacc/internal/bench"
	"analogacc/internal/chip"
	"analogacc/internal/core"
	"analogacc/internal/dda"
	"analogacc/internal/la"
	"analogacc/internal/model"
	"analogacc/internal/pde"
	"analogacc/internal/solvers"
)

// Linear-algebra substrate.
type (
	// Vector is a dense float64 column vector.
	Vector = la.Vector
	// Dense is a row-major dense matrix.
	Dense = la.Dense
	// CSR is a compressed-sparse-row square matrix.
	CSR = la.CSR
	// COOEntry assembles CSR matrices from (row, col, value) triplets.
	COOEntry = la.COOEntry
	// Grid describes a finite-difference grid (1-D/2-D/3-D).
	Grid = la.Grid
	// PoissonStencil is the matrix-free −∇² operator.
	PoissonStencil = la.PoissonStencil
)

// Accelerator architecture (the paper's contribution).
type (
	// Accelerator is the host-side driver for one analog chip.
	Accelerator = core.Accelerator
	// Session is a compiled matrix resident on the chip.
	Session = core.Session
	// Matrix is what the compiler accepts: Operator + row access.
	Matrix = core.Matrix
	// SolveOptions tunes analog solves and Algorithm 2 refinement.
	SolveOptions = core.SolveOptions
	// Stats reports solve cost (analog seconds, runs, rescales, ...).
	Stats = core.Stats
	// DecomposeOptions tunes Section IV-B domain decomposition.
	DecomposeOptions = core.DecomposeOptions
	// DecomposeStats reports the outer block iteration.
	DecomposeStats = core.DecomposeStats
	// ODEOptions tunes native ODE-mode runs (Figure 1).
	ODEOptions = core.ODEOptions
	// Trajectory is a sampled ODE-mode waveform.
	Trajectory = core.Trajectory
	// NonlinearProblem is F(u) = 0 with an explicit sparse Jacobian.
	NonlinearProblem = core.NonlinearProblem
	// NewtonOptions tunes the Section VI-F Newton extension.
	NewtonOptions = core.NewtonOptions
	// NewtonStats reports the Newton outer loop.
	NewtonStats = core.NewtonStats
	// LUTTerm is one lookup-table nonlinearity in nonlinear ODE mode.
	LUTTerm = core.LUTTerm
	// NonlinearODEOptions tunes nonlinear ODE-mode runs.
	NonlinearODEOptions = core.NonlinearODEOptions
	// Farm is a pool of accelerators for parallel block solves.
	Farm = core.Farm
	// ParallelStats reports a multi-chip decomposed solve.
	ParallelStats = core.ParallelStats
	// ChipSpec parameterizes a chip design (macroblocks, converters,
	// bandwidth, mismatch).
	ChipSpec = chip.Spec
	// Chip is the simulated device (bench handle).
	Chip = chip.Chip
)

// Sentinel errors from the accelerator architecture.
var (
	// ErrTooLarge: system exceeds chip capacity; use SolveDecomposed.
	ErrTooLarge = core.ErrTooLarge
	// ErrNotSettled: the analog run hit its time budget.
	ErrNotSettled = core.ErrNotSettled
	// ErrRescaleLimit: overflow exceptions persisted through rescaling.
	ErrRescaleLimit = core.ErrRescaleLimit
)

// NewFarm pools accelerators for SolveDecomposedParallel (Section IV-B's
// "solved separately on multiple accelerators").
func NewFarm(accs ...*Accelerator) (*Farm, error) { return core.NewFarm(accs...) }

// NewSimulated fabricates a simulated chip for spec and returns a driver
// bound to it over the in-memory SPI loopback, plus the chip itself for
// bench-style instrumentation.
func NewSimulated(spec ChipSpec) (*Accelerator, *Chip, error) {
	return core.NewSimulated(spec)
}

// PrototypeChip is the fabricated 65 nm chip: four macroblocks, 8-bit
// converters, 20 kHz bandwidth.
func PrototypeChip() ChipSpec { return chip.PrototypeSpec() }

// ScaledChip is the paper's model accelerator sized for n variables with
// the given ADC resolution and bandwidth (Section V). mulsPerVariable <= 0
// picks a default that fits 2-D stencil rows plus the bias path.
func ScaledChip(n, adcBits int, bandwidthHz float64, mulsPerVariable int) ChipSpec {
	return chip.ScaledSpec(n, adcBits, bandwidthHz, mulsPerVariable)
}

// Vector and matrix constructors.
var (
	// NewVector returns a zero vector.
	NewVector = la.NewVector
	// VectorOf builds a vector from values.
	VectorOf = la.VectorOf
	// MustCSR assembles a CSR matrix, panicking on bad indices.
	MustCSR = la.MustCSR
	// NewCSR assembles a CSR matrix.
	NewCSR = la.NewCSR
	// NewGrid describes a finite-difference grid.
	NewGrid = la.NewGrid
	// NewPoissonStencil builds the matrix-free −∇² operator.
	NewPoissonStencil = la.NewPoissonStencil
	// PoissonMatrix materializes the −∇² operator as CSR.
	PoissonMatrix = la.PoissonMatrix
)

// PDE workloads and multigrid.
type (
	// Problem is a discretized boundary-value problem.
	Problem = pde.Problem
	// Multigrid is a geometric V-cycle solver with pluggable smoother
	// and coarse solver (Section IV-A).
	Multigrid = pde.Multigrid
	// MGOptions tunes multigrid.
	MGOptions = pde.MGOptions
	// MGStats reports a multigrid solve.
	MGStats = pde.MGStats
	// CoarseSolver solves the coarsest level (pluggable: analog!).
	CoarseSolver = pde.CoarseSolver
	// Bratu is the nonlinear test problem for the Newton extension.
	Bratu = pde.Bratu
)

// PDE constructors.
var (
	// Poisson builds −∇²u = f with a known manufactured solution.
	Poisson = pde.Poisson
	// Figure7Problem is the paper's Figure 7 boundary-value problem.
	Figure7Problem = pde.Figure7Problem
	// NewMultigrid builds a V-cycle hierarchy.
	NewMultigrid = pde.NewMultigrid
	// NewBratu discretizes the Bratu problem.
	NewBratu = pde.NewBratu
	// RedBlackSmoother is the order-independent Gauss-Seidel smoother.
	RedBlackSmoother = pde.RedBlackSmoother
)

// Digital baselines (Figure 7's methods and the direct solvers).
type (
	// DigitalOptions configures the iterative baselines.
	DigitalOptions = solvers.Options
	// DigitalResult reports an iterative solve.
	DigitalResult = solvers.Result
	// SolverName identifies an iterative method ("cg", "jacobi", ...).
	SolverName = solvers.Name
)

// Convergence criteria for the digital baselines.
const (
	// RelResidual stops on ‖b − A·x‖/‖b‖ ≤ Tol.
	RelResidual = solvers.RelResidual
	// DeltaInf is the paper's stop: no element of x changes by more than
	// Tol in one iteration (Section V's 1/256-of-full-scale rule).
	DeltaInf = solvers.DeltaInf
)

// Digital solver entry points.
var (
	// CG is conjugate gradients (matrix-free capable).
	CG = solvers.CG
	// SteepestDescent is gradient descent with exact line search.
	SteepestDescent = solvers.SteepestDescent
	// Jacobi, GaussSeidel and SOR are the classical stationary methods.
	Jacobi      = solvers.Jacobi
	GaussSeidel = solvers.GaussSeidel
	SOR         = solvers.SOR
	// PCG is preconditioned conjugate gradients.
	PCG = solvers.PCG
	// NewJacobiPreconditioner and NewSSORPreconditioner build the two
	// stock preconditioners.
	NewJacobiPreconditioner = solvers.NewJacobiPreconditioner
	NewSSORPreconditioner   = solvers.NewSSORPreconditioner
	// SolveDigital dispatches by name.
	SolveDigital = solvers.Solve
	// SolveDirect is dense LU with partial pivoting.
	SolveDirect = solvers.SolveDense
	// SolveDirectCSR densifies and LU-solves a sparse system.
	SolveDirectCSR = solvers.SolveCSRDirect
)

// Silicon model (Table II, bandwidth scaling, CPU/GPU baselines).
type (
	// Design is a bandwidth variant of the accelerator.
	Design = model.Design
	// Complement is the per-grid-point hardware budget.
	Complement = model.Complement
)

// Model entry points.
var (
	// TableII returns the prototype component measurements.
	TableII = model.TableII
	// MacroblockComplement is the per-point hardware at prototype ratio.
	MacroblockComplement = model.MacroblockComplement
	// PaperBandwidths lists the four evaluated designs.
	PaperBandwidths = model.PaperBandwidths
)

// Digital differential analyzer (Section VII related work).
type (
	// DDA is a serial digital differential analyzer.
	DDA = dda.Machine
	// DDAIntegrator is one incremental integrator unit.
	DDAIntegrator = dda.Integrator
)

// NewDDA builds a DDA with the given fraction width in bits.
func NewDDA(width uint) (*DDA, error) { return dda.NewMachine(width) }

// Experiments (the reproduction harness behind cmd/alabench).
type (
	// Experiment regenerates one paper table/figure.
	Experiment = bench.Experiment
	// ResultTable is an experiment's output grid.
	ResultTable = bench.Table
	// ExperimentConfig tunes experiment scale.
	ExperimentConfig = bench.Config
)

// Experiment registry access.
var (
	// Experiments lists all registered reproduction targets.
	Experiments = bench.All
	// ExperimentByID looks one up ("fig8", "table3", ...).
	ExperimentByID = bench.ByID
	// RunExperiments runs experiments concurrently (ExperimentConfig.Jobs
	// workers) and returns their tables in input order.
	RunExperiments = bench.RunMany
)
